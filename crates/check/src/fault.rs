//! Deterministic fault injection for the fault-tolerant execution layer.
//!
//! A [`FaultPlan`] seeds pseudo-random faults — panics, delays and forced
//! bailouts — at engine boundaries so tests can prove that every
//! degradation path in `sbm-core`'s pipeline preserves functional
//! equivalence and that its `FaultSummary` bookkeeping is exact. Like the
//! `corrupt_*` injectors elsewhere in this crate, the hooks are always
//! compiled: with no plan installed the cost is a single `Option` check
//! per engine invocation, and nothing here can fire in production paths
//! unless a caller explicitly constructs a plan.
//!
//! Rolls are a pure function of `(seed, window, engine, attempt)` — no
//! global state, no clock — so a plan injects the *same* faults no matter
//! how many worker threads execute the windows, and a test can replay the
//! ledger independently.

use std::panic::resume_unwind;
use std::time::Duration;

/// The kind of fault a [`FaultPlan`] roll produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Unwind out of the engine invocation (via [`inject_panic`]).
    Panic,
    /// Sleep for [`FaultPlan::delay`] before running the engine.
    Delay,
    /// Treat the invocation as a forced bailout: the engine is skipped
    /// and the attempt counts as failed.
    Bailout,
}

/// A deterministic schedule of injected faults.
///
/// Each rate is an independent probability in `[0, 1]`; they are applied
/// as cumulative bands (panic first, then delay, then bailout), so their
/// sum is the total injection probability and must not exceed 1 to give
/// each kind its full band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every roll.
    pub seed: u64,
    /// Probability of [`FaultKind::Panic`] per engine invocation.
    pub panic_rate: f64,
    /// Probability of [`FaultKind::Delay`] per engine invocation.
    pub delay_rate: f64,
    /// Probability of [`FaultKind::Bailout`] per engine invocation.
    pub bailout_rate: f64,
    /// How long an injected delay sleeps. Kept small by default so
    /// stress tests with high delay rates stay fast.
    pub delay: Duration,
}

impl FaultPlan {
    /// A plan injecting each fault kind with the same probability
    /// `rate` (clamped to `[0, 1/3]` so the cumulative bands fit).
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0 / 3.0);
        FaultPlan {
            seed,
            panic_rate: rate,
            delay_rate: rate,
            bailout_rate: rate,
            delay: Duration::from_micros(200),
        }
    }

    /// Rolls for the engine invocation identified by `(window, engine,
    /// attempt)`. Deterministic: equal arguments on an equal plan always
    /// produce the same outcome, independent of threads or timing.
    #[must_use]
    pub fn roll(&self, window: usize, engine: &str, attempt: u8) -> Option<FaultKind> {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        h = splitmix64(h ^ window as u64);
        for &b in engine.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ u64::from(attempt));
        // 53 uniform bits → r ∈ [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let r = (h >> 11) as f64 / (1u64 << 53) as f64;
        if r < self.panic_rate {
            Some(FaultKind::Panic)
        } else if r < self.panic_rate + self.delay_rate {
            Some(FaultKind::Delay)
        } else if r < self.panic_rate + self.delay_rate + self.bailout_rate {
            Some(FaultKind::Bailout)
        } else {
            None
        }
    }
}

/// Payload carried by an injected panic, so `catch_unwind` sites can tell
/// injected faults from genuine engine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic;

/// Unwinds with an [`InjectedPanic`] payload via `resume_unwind`, which
/// skips the panic hook — stress tests with hundreds of injected panics
/// stay silent on stderr.
pub fn inject_panic() -> ! {
    resume_unwind(Box::new(InjectedPanic))
}

/// One round of splitmix64 — the same finalizer the AIG simulator uses
/// for its pattern generator.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let plan = FaultPlan::uniform(42, 0.2);
        for w in 0..50 {
            for attempt in 0..2 {
                assert_eq!(
                    plan.roll(w, "rewrite", attempt),
                    plan.roll(w, "rewrite", attempt)
                );
            }
        }
    }

    #[test]
    fn rolls_depend_on_every_key_component() {
        let plan = FaultPlan::uniform(7, 1.0 / 3.0);
        let base: Vec<_> = (0..200).map(|w| plan.roll(w, "mspf", 0)).collect();
        let other_engine: Vec<_> = (0..200).map(|w| plan.roll(w, "bdiff", 0)).collect();
        let other_attempt: Vec<_> = (0..200).map(|w| plan.roll(w, "mspf", 1)).collect();
        let other_seed: Vec<_> = (0..200)
            .map(|w| FaultPlan::uniform(8, 1.0 / 3.0).roll(w, "mspf", 0))
            .collect();
        assert_ne!(base, other_engine);
        assert_ne!(base, other_attempt);
        assert_ne!(base, other_seed);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::uniform(1, 0.25);
        let n = 4000;
        let hits = (0..n)
            .filter(|&w| plan.roll(w, "resub", 0).is_some())
            .count();
        // Total injection probability 0.75; allow a generous band.
        let frac = hits as f64 / f64::from(n as u32);
        assert!((0.6..0.9).contains(&frac), "observed rate {frac}");
        let zero = FaultPlan::uniform(1, 0.0);
        assert!((0..n).all(|w| zero.roll(w, "resub", 0).is_none()));
    }

    #[test]
    fn injected_panic_is_catchable_and_identifiable() {
        let payload =
            std::panic::catch_unwind(|| inject_panic()).expect_err("inject_panic must unwind");
        assert!(payload.downcast_ref::<InjectedPanic>().is_some());
    }

    #[test]
    fn uniform_clamps_excess_rates() {
        let plan = FaultPlan::uniform(3, 5.0);
        let total = plan.panic_rate + plan.delay_rate + plan.bailout_rate;
        assert!(total <= 1.0 + f64::EPSILON);
    }
}
