//! The shared simulation-signature service.
//!
//! Bit-parallel random simulation is the cheapest *necessary-condition*
//! equivalence check available to a synthesis flow: two signals whose
//! signatures differ are certainly inequivalent, so every signature
//! comparison that fails saves a BDD or SAT call (the "functional
//! filtering" of the paper's Section III-B, in the spirit of
//! simulation-guided resubstitution). This crate centralizes that filter
//! behind one service shared by every engine of a pipeline run:
//!
//! * [`SigService`] owns the pattern set — a fixed block of seeded
//!   random patterns plus an incrementally growing block of
//!   **counterexample patterns** harvested from failed SAT equivalence
//!   checks ([`SigService::record_cex`]). Counterexamples are the
//!   patterns random simulation missed by definition, so replaying them
//!   against future candidates makes the filter monotonically sharper.
//! * [`SigService::signatures`] simulates a network under the current
//!   committed pattern set. The read path takes the lock only to build
//!   the input rows; workers on different windows can query
//!   concurrently.
//! * Counterexample appends land in a *pending* pool behind the lock and
//!   only become visible via [`SigService::commit_pending`], which run
//!   owners call at serial boundaries (end of a pipeline pass, between
//!   script steps). Every filter decision inside one pass therefore sees
//!   the same pattern set regardless of worker count or scheduling —
//!   the service is deterministic across `--threads 1/2/4`.
//! * [`window_care_mask`] and [`keep_candidate`] implement the sound
//!   window filter: a candidate is rejected only when a simulated
//!   pattern *proves* it disagrees with its target where the target is
//!   observable (see the function docs for the soundness argument).
//!
//! Filter activity is tallied thread-locally ([`SimTally`], mirroring
//! `sbm_sat`'s tally discipline) and drained by run owners with
//! [`drain_sim_tally`] at attribution boundaries, so hit/miss and
//! refinement counters surface in run reports deterministically.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use sbm_aig::sim::Signatures;
use sbm_aig::{Aig, Lit, NodeId};
use sbm_tt::words::{differs_under_mask, pack_bits};

/// Aggregated counters of simulation-filter activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimTally {
    /// Candidates rejected by a signature comparison (each one a BDD or
    /// SAT call that never happened).
    pub filter_hits: u64,
    /// Candidates that passed the signature filter and went on to exact
    /// reasoning.
    pub filter_misses: u64,
    /// Counterexample witnesses appended to the pending pool.
    pub cex_recorded: u64,
    /// Counterexample patterns committed into the shared pattern set.
    pub cex_committed: u64,
    /// Networks (re-)simulated against the service's pattern set.
    pub resims: u64,
}

impl SimTally {
    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: &SimTally) {
        self.filter_hits += other.filter_hits;
        self.filter_misses += other.filter_misses;
        self.cex_recorded += other.cex_recorded;
        self.cex_committed += other.cex_committed;
        self.resims += other.resims;
    }

    /// True when nothing has been recorded.
    pub fn is_zero(&self) -> bool {
        *self == SimTally::default()
    }
}

thread_local! {
    static TALLY: Cell<SimTally> = const { Cell::new(SimTally {
        filter_hits: 0,
        filter_misses: 0,
        cex_recorded: 0,
        cex_committed: 0,
        resims: 0,
    }) };
}

fn with_tally(f: impl FnOnce(&mut SimTally)) {
    TALLY.with(|t| {
        let mut tally = t.get();
        f(&mut tally);
        t.set(tally);
    });
}

/// Records `n` candidates rejected by the signature filter.
pub fn record_filter_hits(n: u64) {
    with_tally(|t| t.filter_hits += n);
}

/// Records `n` candidates that survived the signature filter.
pub fn record_filter_misses(n: u64) {
    with_tally(|t| t.filter_misses += n);
}

/// Takes the calling thread's accumulated tally, leaving it zeroed.
///
/// Drains are destructive by design: a counter is attributed to exactly
/// one report, so nested measurement scopes never double-count.
pub fn drain_sim_tally() -> SimTally {
    TALLY.with(Cell::take)
}

/// Adds `tally` back into the calling thread's accumulator — for callers
/// that collected a tally from a discarded inner report and want it to
/// flow to the surrounding measurement scope.
pub fn note_sim_tally(tally: &SimTally) {
    with_tally(|t| t.merge(tally));
}

/// Configuration of a [`SigService`].
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seeded random pattern words per node (64 patterns each).
    pub words: usize,
    /// RNG seed for the random block.
    pub seed: u64,
    /// Cap on counterexample pattern words per node: at most
    /// `max_cex_words * 64` committed counterexamples are replayed.
    pub max_cex_words: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            words: 4,
            seed: 0x51A7_5EED,
            max_cex_words: 4,
        }
    }
}

/// The counterexample pattern pool: `committed` is visible to every
/// signature query, `pending` becomes visible only at the next
/// [`SigService::commit_pending`].
#[derive(Debug, Default)]
struct CexPool {
    committed: Vec<Vec<bool>>,
    pending: Vec<Vec<bool>>,
}

/// The shared, incrementally-refined simulation-signature service.
///
/// The handle is a cheap clone (the pattern pool lives behind an
/// internal `Arc`), so one service instance is shared by every engine
/// invocation of a pipeline or script run: clones observe the same
/// committed pattern set and feed the same pending pool. See the module
/// docs for the concurrency and determinism contract.
#[derive(Debug, Clone, Default)]
pub struct SigService {
    inner: Arc<ServiceInner>,
}

#[derive(Debug, Default)]
struct ServiceInner {
    config: SimConfig,
    // sbm-lint: allow(C002) the cex pool is the service's one shared-state point; appends are commutative and reads snapshot under the same lock
    pool: Mutex<CexPool>,
}

/// Same xorshift64* stream the AIG simulator uses, reproduced here so
/// the service's base block is self-contained and stable.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F491_4F6CDD1D)
}

impl SigService {
    /// Creates a service with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        SigService {
            inner: Arc::new(ServiceInner {
                config,
                // sbm-lint: allow(C002) constructor for the pool field allowed above
                pool: Mutex::new(CexPool::default()),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CexPool> {
        // A poisoned pool only means a worker panicked mid-append; the
        // pattern data itself is always well-formed.
        match self.inner.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Simulates `aig` under the service's current pattern set: the
    /// seeded random block plus every committed counterexample pattern.
    ///
    /// Input `i` always receives the same base patterns regardless of
    /// the network, so signatures of interface-compatible networks are
    /// directly comparable (the equivalence screen relies on this).
    /// Counterexample patterns are applied by input index as well; for a
    /// network with more inputs than the witness recorded, the missing
    /// bits are 0. Any pattern set yields a *sound* filter — patterns
    /// only ever prove inequivalence — so this reuse is free diversity,
    /// exact replay for networks shaped like the refuted pair.
    pub fn signatures(&self, aig: &Aig) -> Signatures {
        with_tally(|t| t.resims += 1);
        let base_words = self.inner.config.words.max(1);
        let pool = self.lock();
        let cex_count = pool
            .committed
            .len()
            .min(self.inner.config.max_cex_words.saturating_mul(64));
        let cex_words = cex_count.div_ceil(64);
        let mut state = self.inner.config.seed | 1;
        let rows: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|i| {
                let mut row: Vec<u64> = (0..base_words).map(|_| xorshift64(&mut state)).collect();
                if cex_words > 0 {
                    let bits: Vec<bool> = pool.committed[..cex_count]
                        .iter()
                        .map(|cex| cex.get(i).copied().unwrap_or(false))
                        .collect();
                    let mut packed = pack_bits(&bits);
                    packed.resize(cex_words, 0);
                    row.extend(packed);
                }
                row
            })
            .collect();
        drop(pool);
        Signatures::with_input_words(aig, &rows)
    }

    /// Appends a counterexample witness (one bool per primary input of
    /// the refuted network) to the pending pool. Cheap: one short
    /// critical section; the pattern becomes visible to signature
    /// queries only after the next [`SigService::commit_pending`].
    pub fn record_cex(&self, witness: &[bool]) {
        self.lock().pending.push(witness.to_vec());
        with_tally(|t| t.cex_recorded += 1);
    }

    /// Promotes pending counterexamples into the committed pattern set,
    /// in a canonical (sorted, deduplicated) order so the resulting set
    /// is identical no matter which worker recorded which witness first.
    /// Call this only at serial boundaries. Returns the number of
    /// patterns actually added (the pool is capped by
    /// [`SimConfig::max_cex_words`]).
    pub fn commit_pending(&self) -> usize {
        let mut pool = self.lock();
        if pool.pending.is_empty() {
            return 0;
        }
        let mut pending = std::mem::take(&mut pool.pending);
        pending.sort_unstable();
        pending.dedup();
        let cap = self.inner.config.max_cex_words.saturating_mul(64);
        let mut added = 0;
        for cex in pending {
            if pool.committed.len() >= cap {
                break;
            }
            if pool.committed.contains(&cex) {
                continue;
            }
            pool.committed.push(cex);
            added += 1;
        }
        drop(pool);
        if added > 0 {
            with_tally(|t| t.cex_committed += added as u64);
        }
        added
    }

    /// Number of committed counterexample patterns currently replayed.
    pub fn committed_patterns(&self) -> usize {
        self.lock().committed.len()
    }

    /// Drops every harvested counterexample — committed and pending —
    /// returning the service to its base pattern block.
    ///
    /// Run owners that need **replayable** steps (the script's
    /// canonical-steps mode, where a park-and-resume must re-execute a
    /// step bit-for-bit) call this at step boundaries instead of
    /// [`SigService::commit_pending`]: carried-over counterexamples are
    /// invisible state a checkpoint does not capture, and under finite
    /// SAT/move budgets a sharper filter changes budget consumption and
    /// therefore results. Resetting makes every step a pure function of
    /// its input network, at the cost of cross-step pattern reuse.
    pub fn reset(&self) {
        let mut pool = self.lock();
        pool.committed.clear();
        pool.pending.clear();
    }
}

/// Simulated observability care mask of `target` inside a window.
///
/// `nodes` must be the window members in topological order and `roots`
/// the window roots (both as produced by `sbm_aig::window::partition`).
/// The mask has one bit per simulated pattern: bit `p` is set iff
/// flipping `target`'s value under pattern `p` and re-propagating
/// through the window changes at least one root.
///
/// **Soundness.** A set bit proves the leaf minterm induced by pattern
/// `p` lies in `target`'s window care set (its value is observable at a
/// root there), because the flip-propagation evaluates exactly the
/// cofactor difference the BDD-based MSPF computes. A candidate whose
/// signature differs from `target` on a set bit therefore disagrees
/// with it on a care minterm and can never pass the exact
/// connectability check — rejecting it is always safe. A clear bit
/// proves nothing.
pub fn window_care_mask(
    aig: &Aig,
    sig: &Signatures,
    nodes: &[NodeId],
    roots: &[NodeId],
    target: NodeId,
) -> Vec<u64> {
    let wpn = sig.words_per_node();
    let mut flipped: HashMap<NodeId, Vec<u64>> = HashMap::new();
    flipped.insert(
        target,
        (0..wpn).map(|w| !sig.node_word(target, w)).collect(),
    );
    for &id in nodes {
        if id == target || aig.is_replaced(id) {
            continue;
        }
        let (a, b) = aig.fanins(id);
        if !flipped.contains_key(&a.node()) && !flipped.contains_key(&b.node()) {
            continue; // untouched by the flip: baseline signature stands
        }
        let value = |l: Lit, w: usize| -> u64 {
            let base = flipped
                .get(&l.node())
                .map_or_else(|| sig.node_word(l.node(), w), |v| v[w]);
            if l.is_complemented() {
                !base
            } else {
                base
            }
        };
        let words: Vec<u64> = (0..wpn).map(|w| value(a, w) & value(b, w)).collect();
        flipped.insert(id, words);
    }
    let mut care = vec![0u64; wpn];
    for &root in roots {
        if let Some(words) = flipped.get(&root) {
            for (w, slot) in care.iter_mut().enumerate() {
                *slot |= words[w] ^ sig.node_word(root, w);
            }
        }
    }
    care
}

/// The candidate filter: keep `cand` as a replacement candidate for
/// `target` unless a simulated care pattern proves them apart.
///
/// Returns `false` (reject) only when `cand` and `target` differ on a
/// pattern selected by `care` — a sound rejection per
/// [`window_care_mask`]'s argument. Returns `true` otherwise; exact
/// (BDD/SAT) reasoning still decides acceptance.
pub fn keep_candidate(sig: &Signatures, target: NodeId, cand: Lit, care: &[u64]) -> bool {
    let wpn = sig.words_per_node();
    debug_assert_eq!(care.len(), wpn);
    let t: Vec<u64> = (0..wpn).map(|w| sig.node_word(target, w)).collect();
    let c: Vec<u64> = (0..wpn).map(|w| sig.lit_word(cand, w)).collect();
    !differs_under_mask(&c, &t, care)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_and_net() -> (Aig, Lit, Lit, Lit, Lit) {
        // g = (a ⊕ b) & a — under the & a context, the XOR node is only
        // observable where a = 1.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        let g = aig.and(x, a);
        aig.add_output(g);
        (aig, a, b, x, g)
    }

    fn all_nodes(aig: &Aig) -> Vec<NodeId> {
        aig.topo_order()
    }

    #[test]
    fn tally_accumulates_and_drains() {
        let _ = drain_sim_tally();
        record_filter_hits(3);
        record_filter_misses(2);
        let tally = drain_sim_tally();
        assert_eq!(tally.filter_hits, 3);
        assert_eq!(tally.filter_misses, 2);
        assert!(drain_sim_tally().is_zero());
    }

    #[test]
    fn note_restores_a_drained_tally() {
        let _ = drain_sim_tally();
        let outer = SimTally {
            filter_hits: 5,
            resims: 2,
            ..SimTally::default()
        };
        note_sim_tally(&outer);
        assert_eq!(drain_sim_tally(), outer);
    }

    #[test]
    fn signatures_are_deterministic_and_interface_aligned() {
        let (aig, a, b, _, _) = xor_and_net();
        let svc = SigService::default();
        let s1 = svc.signatures(&aig);
        let s2 = svc.signatures(&aig);
        for w in 0..s1.words_per_node() {
            assert_eq!(s1.lit_word(a, w), s2.lit_word(a, w));
            assert_eq!(s1.lit_word(b, w), s2.lit_word(b, w));
        }
        // A different network with the same input count gets the same
        // input patterns — signatures are comparable across networks.
        let mut other = Aig::new();
        let oa = other.add_input();
        let ob = other.add_input();
        let f = other.or(oa, ob);
        other.add_output(f);
        let so = svc.signatures(&other);
        for w in 0..s1.words_per_node() {
            assert_eq!(s1.lit_word(a, w), so.lit_word(oa, w));
            assert_eq!(s1.lit_word(b, w), so.lit_word(ob, w));
        }
    }

    #[test]
    fn care_mask_matches_observability() {
        let (aig, a, _, x, _) = xor_and_net();
        let svc = SigService::default();
        let sig = svc.signatures(&aig);
        let care = window_care_mask(
            &aig,
            &sig,
            &all_nodes(&aig),
            &[aig.outputs()[0].node()],
            x.node(),
        );
        // The XOR is observable exactly where a = 1.
        for (w, &care_word) in care.iter().enumerate() {
            assert_eq!(care_word, sig.lit_word(a, w), "word {w}");
        }
        assert_eq!(care.len(), sig.words_per_node());
    }

    #[test]
    fn filter_keeps_permissible_and_rejects_observable_differences() {
        let (aig, _a, b, x, _) = xor_and_net();
        let svc = SigService::default();
        let sig = svc.signatures(&aig);
        let root = aig.outputs()[0].node();
        let care = window_care_mask(&aig, &sig, &all_nodes(&aig), &[root], x.node());
        // !b agrees with a ⊕ b wherever a = 1: a permissible rewrite the
        // filter must keep. Compare in the node's positive phase (the
        // xor builder may hand back a complemented literal).
        let good = if x.is_complemented() { b } else { !b };
        assert!(keep_candidate(&sig, x.node(), good, &care));
        // Its complement is wrong wherever a = 1 (unless b is constant
        // on the sample, which 256 random patterns rule out).
        assert!(!keep_candidate(&sig, x.node(), !good, &care));
    }

    #[test]
    fn cex_refinement_sharpens_the_filter() {
        // f = a & b vs g = a: equal on 3 of 4 minterms; make the random
        // block miss the distinguishing pattern by using a 0-word base
        // (only counterexample patterns drive the signatures).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let svc = SigService::new(SimConfig {
            words: 1,
            seed: 0, // seed|1 = 1: first pattern word is fixed but arbitrary
            max_cex_words: 1,
        });
        // Before refinement the filter's verdict on (f vs a) depends on
        // luck; inject the distinguishing witness a=1, b=0 and commit.
        svc.record_cex(&[true, false]);
        assert_eq!(svc.committed_patterns(), 0, "pending is invisible");
        assert_eq!(svc.commit_pending(), 1);
        assert_eq!(svc.committed_patterns(), 1);
        let sig = svc.signatures(&aig);
        assert_eq!(sig.words_per_node(), 2, "base word + one cex word");
        // The witness lands in bit 0 of the appended word and evaluates
        // f = 0, a = 1: the replayed pattern itself distinguishes them.
        assert_eq!(sig.node_word(f.node(), 1) & 1, 0);
        assert_eq!(sig.lit_word(a, 1) & 1, 1);
        let mut cex_only_care = vec![0u64; sig.words_per_node()];
        cex_only_care[1] = 1;
        assert!(!keep_candidate(&sig, f.node(), a, &cex_only_care));
    }

    #[test]
    fn commit_is_canonical_and_capped() {
        let svc = SigService::new(SimConfig {
            words: 1,
            seed: 9,
            max_cex_words: 1,
        });
        // Record in one order...
        svc.record_cex(&[true, true]);
        svc.record_cex(&[false, true]);
        svc.record_cex(&[true, true]); // duplicate
        assert_eq!(svc.commit_pending(), 2);
        let other = SigService::new(SimConfig {
            words: 1,
            seed: 9,
            max_cex_words: 1,
        });
        // ...and the reverse order: same committed set, same signatures.
        other.record_cex(&[true, true]);
        other.record_cex(&[false, true]);
        other.record_cex(&[false, true]);
        assert_eq!(other.commit_pending(), 2);
        let mut net = Aig::new();
        let a = net.add_input();
        let b = net.add_input();
        let f = net.and(a, b);
        net.add_output(f);
        let s1 = svc.signatures(&net);
        let s2 = other.signatures(&net);
        assert_eq!(s1.words_per_node(), s2.words_per_node());
        for w in 0..s1.words_per_node() {
            assert_eq!(s1.lit_word(f, w), s2.lit_word(f, w));
        }
        // The cap holds: at most 64 patterns per cex word.
        for i in 0..200u32 {
            svc.record_cex(&[i % 2 == 0, i % 3 == 0, i % 5 == 0]);
        }
        svc.commit_pending();
        assert!(svc.committed_patterns() <= 64);
    }
}
