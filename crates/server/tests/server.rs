// Test code: a panic IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! In-process integration tests of the job server: one `Server` plus
//! protocol clients over loopback TCP.

use std::thread;
use std::time::{Duration, Instant};

use sbm_core::script::sbm_script_report;
use sbm_metrics::RunReport;
use sbm_server::corpus::corpus_aiger;
use sbm_server::{
    job_sbm_options, Client, JobOptions, JobState, Server, ServerConfig, SubmitOutcome,
};

/// Starts a server on an ephemeral port; returns its address and the
/// accept-loop thread (detached — the test process exits anyway).
fn start_server(cfg: ServerConfig) -> String {
    let server = Server::start(cfg).expect("server start");
    let addr = server.addr().expect("addr").to_string();
    thread::spawn(move || server.run().expect("server run"));
    addr
}

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sbm-server-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls RESULT until the job settles (done / failed / cancelled).
fn await_result(
    client: &mut Client,
    key: &str,
    timeout: Duration,
) -> Result<sbm_server::JobPayload, JobState> {
    let start = Instant::now();
    loop {
        match client.result(key).expect("result round-trip") {
            Ok(payload) => return Ok(payload),
            Err(state @ (JobState::Failed | JobState::Cancelled)) => return Err(state),
            Err(_pending) => {
                assert!(
                    start.elapsed() < timeout,
                    "job {key} did not settle within {timeout:?}"
                );
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The serial one-shot reference: same wire options, no server, no
/// preemption. Server results must be byte-identical to this.
fn serial_reference(index: usize, wire: &JobOptions) -> String {
    let options = job_sbm_options(wire).expect("options");
    let input = sbm_aig::aiger::parse(&corpus_aiger(index)).expect("parse");
    sbm_aig::aiger::write(&sbm_script_report(&input, &options).aig)
}

#[test]
fn submit_runs_to_byte_identical_result() {
    let addr = start_server(ServerConfig {
        root: tmp_root("basic"),
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let wire = JobOptions::default();

    for index in [0usize, 3, 7] {
        let key = format!("basic-{index}");
        let outcome = client
            .submit("it", &key, wire, &corpus_aiger(index))
            .expect("submit");
        assert_eq!(outcome, SubmitOutcome::Accepted);
    }
    for index in [0usize, 3, 7] {
        let key = format!("basic-{index}");
        let payload =
            await_result(&mut client, &key, Duration::from_secs(60)).expect("job settles done");
        // The report strict-decodes and carries the server identity.
        let report = RunReport::from_json(&payload.report_json).expect("strict decode");
        assert_eq!(report.tool, "sbm-server");
        assert_eq!(report.benchmarks, vec![key.clone()]);
        assert!(report.server.slices >= 1, "at least one slice");
        // Byte-identity against the serial one-shot reference.
        assert_eq!(
            payload.aiger,
            serial_reference(index, &wire),
            "job {key}: server result differs from serial reference"
        );
    }
    let _ = client.shutdown(false);
}

#[test]
fn resubmits_are_idempotent_and_unknown_keys_report_unknown() {
    let addr = start_server(ServerConfig {
        root: tmp_root("idem"),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let wire = JobOptions::default();

    assert_eq!(
        client
            .submit("it", "idem-1", wire, &corpus_aiger(1))
            .expect("submit"),
        SubmitOutcome::Accepted
    );
    // Same key again — acknowledged, never a second run.
    assert_eq!(
        client
            .submit("it", "idem-1", wire, &corpus_aiger(1))
            .expect("resubmit"),
        SubmitOutcome::AlreadyKnown
    );
    let (state, _) = client.status("never-submitted").expect("status");
    assert_eq!(state, JobState::Unknown);
    // Bad submissions are typed errors, not admissions.
    assert!(client.submit("it", "", wire, &corpus_aiger(0)).is_err());
    assert!(client
        .submit("it", "bad-aig", wire, "not an aiger file")
        .is_err());
    let bad_options = JobOptions {
        check: 9,
        ..JobOptions::default()
    };
    assert!(client
        .submit("it", "bad-opts", bad_options, &corpus_aiger(0))
        .is_err());
    let _ = client.shutdown(false);
}

#[test]
fn tiny_slice_parks_resumes_and_still_matches_reference() {
    // A 1 ms slice cannot fit the whole script: the job must park at
    // least once, resume, and still produce the exact serial result.
    let addr = start_server(ServerConfig {
        root: tmp_root("park"),
        workers: 1,
        slice: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let wire = JobOptions {
        iterations: 2,
        ..JobOptions::default()
    };
    let index = 5usize; // the widest corpus entry
    client
        .submit("it", "park-1", wire, &corpus_aiger(index))
        .expect("submit");
    let payload =
        await_result(&mut client, "park-1", Duration::from_secs(120)).expect("job settles done");
    let report = RunReport::from_json(&payload.report_json).expect("strict decode");
    assert!(
        report.server.parks >= 1,
        "a 1 ms slice must park at least once (slices={}, parks={})",
        report.server.slices,
        report.server.parks
    );
    assert_eq!(report.server.resumes, report.server.parks);
    assert_eq!(report.server.slices, report.server.parks + 1);
    assert_eq!(
        payload.aiger,
        serial_reference(index, &wire),
        "preempted job diverged from the serial reference"
    );
    let _ = client.shutdown(false);
}

#[test]
fn every_corpus_entry_replays_byte_identically_across_parks() {
    // Direct regression for the canonical-steps contract, without the
    // server in the loop: for every corpus entry, a run driven in tiny
    // budget slices through park-and-resume must reproduce the one-shot
    // result exactly. Entry 11 historically diverged here: the sim
    // service carried counterexample patterns across steps, state no
    // snapshot captures, and under finite SAT/move budgets the sharper
    // filter changed the result.
    use sbm_budget::Budget;
    use sbm_core::script::{sbm_script_budgeted, sbm_script_resumable_budgeted};

    let wire = JobOptions {
        iterations: 2,
        ..JobOptions::default()
    };
    let base = job_sbm_options(&wire).expect("options");
    for index in 0..sbm_server::corpus::CORPUS_SIZE {
        let input = sbm_aig::aiger::parse(&corpus_aiger(index)).expect("parse");
        let reference = sbm_aig::aiger::write(&sbm_script_report(&input, &base).aig);

        let dir = tmp_root(&format!("replay-{index}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut options = base.clone();
        options.checkpoint_dir = Some(dir.clone());

        // First slice: a 1 ms budget cannot finish the two-iteration
        // script; park it. Escalate the slice on every resume (as the
        // server's scheduler does) until a run completes un-tripped.
        let mut slice_ms = 1u64;
        let mut budget = Budget::from_deadline(Some(Duration::from_millis(slice_ms)));
        let mut out = sbm_script_budgeted(&input, &options, &budget);
        let mut parks = 0u32;
        while budget.check().is_err() {
            parks += 1;
            assert!(parks < 40, "entry {index} never completed");
            slice_ms *= 2;
            budget = Budget::from_deadline(Some(Duration::from_millis(slice_ms)));
            out = sbm_script_resumable_budgeted(&input, &options, &budget)
                .expect("resume from parked checkpoint");
        }
        assert_eq!(
            sbm_aig::aiger::write(&out.aig),
            reference,
            "entry {index}: parked/resumed run diverged from one-shot ({parks} parks)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cancel_settles_job_as_cancelled() {
    let addr = start_server(ServerConfig {
        root: tmp_root("cancel"),
        workers: 1,
        slice: Duration::from_millis(5),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // Iteration counts high enough that neither job can finish before
    // the cancels land (tiny corpus circuits complete a whole iteration
    // in well under a slice).
    let wire = JobOptions {
        iterations: 300,
        ..JobOptions::default()
    };
    // Two slow jobs: the second sits queued behind the first on the
    // single worker, so cancelling it hits the queued path; the first
    // gets the running/parked path.
    client
        .submit("it", "cancel-a", wire, &corpus_aiger(5))
        .expect("submit");
    client
        .submit("it", "cancel-b", wire, &corpus_aiger(6))
        .expect("submit");
    client.cancel("cancel-b").expect("cancel queued");
    client.cancel("cancel-a").expect("cancel running");

    let start = Instant::now();
    for key in ["cancel-a", "cancel-b"] {
        loop {
            let (state, _) = client.status(key).expect("status");
            match state {
                JobState::Cancelled => break,
                // A cancel can race completion; done is acceptable for
                // the running job, never for the queued one.
                JobState::Done if key == "cancel-a" => break,
                _ => {
                    assert!(
                        start.elapsed() < Duration::from_secs(60),
                        "{key} stuck in {state:?}"
                    );
                    thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
    // Cancelling an already-settled job is idempotent.
    client.cancel("cancel-b").expect("cancel settled");
    let _ = client.shutdown(false);
}

#[test]
fn full_queue_answers_busy_not_hang() {
    let addr = start_server(ServerConfig {
        root: tmp_root("busy"),
        workers: 1,
        queue_capacity: 1,
        slice: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // High iteration counts keep the single worker saturated for the
    // whole test (the jobs are cancelled at the end, never awaited).
    let wire = JobOptions {
        iterations: 500,
        ..JobOptions::default()
    };
    client
        .submit("it", "busy-running", wire, &corpus_aiger(5))
        .expect("submit");
    // Wait until the worker has dequeued it...
    let start = Instant::now();
    loop {
        let (state, _) = client.status("busy-running").expect("status");
        if state != JobState::Queued {
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(30), "never dequeued");
        thread::sleep(Duration::from_millis(5));
    }
    // ...then fill the one queue slot and overflow it. The parked job
    // re-enters the queue between slices, so BUSY may arrive on the
    // filler submit already; either way, some submit must report BUSY
    // backpressure rather than queueing without bound.
    let filler = client
        .submit("it", "busy-filler", wire, &corpus_aiger(1))
        .expect("submit filler");
    let overflow = client
        .submit("it", "busy-overflow", wire, &corpus_aiger(2))
        .expect("submit overflow");
    assert!(
        matches!(filler, SubmitOutcome::Busy { .. })
            || matches!(overflow, SubmitOutcome::Busy { .. }),
        "expected BUSY backpressure, got {filler:?} then {overflow:?}"
    );
    for key in ["busy-running", "busy-filler", "busy-overflow"] {
        let _ = client.cancel(key);
    }
    let _ = client.shutdown(false);
}
