// Test code: a panic IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! The crash-restart soak test: hundreds of concurrent jobs from many
//! clients, a SIGKILL of the server mid-run, a restart over the same
//! store root — and at the end, zero lost jobs, zero duplicated jobs,
//! every report strict-decoding, and every optimized network
//! byte-identical to a serial one-shot run with the same options.
//!
//! The test drives the real binaries (`sbm-server`, `loadgen`) over
//! real TCP, exactly as CI's smoke does, via the `CARGO_BIN_EXE_*`
//! paths Cargo provides to integration tests.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sbm_core::script::sbm_script_report;
use sbm_metrics::RunReport;
use sbm_server::corpus::{corpus_aiger, CORPUS_SIZE};
use sbm_server::{job_sbm_options, JobOptions};

const JOBS: usize = 200;
const CLIENTS: usize = 8;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbm-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn spawn_server(root: &Path, addr_file: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sbm-server"))
        .args([
            "--root",
            &root.display().to_string(),
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file.display().to_string(),
            "--workers",
            "4",
            "--queue-capacity",
            "400",
            "--slice-ms",
            "20",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sbm-server")
}

fn count_results(out: &Path) -> usize {
    std::fs::read_dir(out)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn soak_kill_restart_loses_and_duplicates_nothing() {
    let root = tmp_dir("root");
    let out = tmp_dir("out");
    let addr_file = tmp_dir("addr").join("addr");

    let mut server = spawn_server(&root, &addr_file);

    // The load: 8 concurrent clients, 200 jobs, mixed corpus, writing
    // every finished report + network to `out`.
    let mut loadgen = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--addr-file",
            &addr_file.display().to_string(),
            "--jobs",
            &JOBS.to_string(),
            "--clients",
            &CLIENTS.to_string(),
            "--out",
            &out.display().to_string(),
            "--timeout-s",
            "240",
            "--tag",
            "soak",
        ])
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn loadgen");

    // SIGKILL the server mid-run: after some results exist but long
    // before all of them do.
    let started = Instant::now();
    loop {
        let done = count_results(&out);
        if done >= 5 {
            assert!(
                done < JOBS,
                "server finished before the kill — soak too fast"
            );
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "no results after 120 s; soak stalled (done={done})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    // Restart over the same root: the recovery scan must re-admit every
    // in-flight job; loadgen reconnects through the republished
    // addr-file and rides out the outage.
    let mut server = spawn_server(&root, &addr_file);

    let status = loadgen.wait().expect("loadgen exit");
    let _ = server.kill();
    let _ = server.wait();
    assert!(
        status.success(),
        "loadgen failed: some jobs were lost, failed or unaccounted ({status:?})"
    );

    // Zero lost, zero duplicated: exactly one report and one network
    // per submitted key, none extra.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();
    let mut networks: BTreeMap<String, String> = BTreeMap::new();
    for entry in std::fs::read_dir(&out).expect("read out") {
        let path = entry.expect("entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("stem")
            .to_string();
        match path.extension().and_then(|x| x.to_str()) {
            Some("json") => {
                let text = std::fs::read_to_string(&path).expect("read report");
                // Every report must strict-decode (schema v3).
                let report = RunReport::from_json(&text)
                    .unwrap_or_else(|e| panic!("{stem}: report does not strict-decode: {e}"));
                assert!(reports.insert(stem.clone(), report).is_none(), "dup {stem}");
            }
            Some("aag") => {
                let text = std::fs::read_to_string(&path).expect("read aag");
                assert!(networks.insert(stem.clone(), text).is_none(), "dup {stem}");
            }
            other => panic!("unexpected output {path:?} ({other:?})"),
        }
    }
    assert_eq!(reports.len(), JOBS, "lost reports");
    assert_eq!(networks.len(), JOBS, "lost networks");

    // Serial one-shot references, one per distinct corpus entry.
    let wire = JobOptions::default();
    let options = job_sbm_options(&wire).expect("options");
    let reference: Vec<String> = (0..CORPUS_SIZE)
        .map(|i| {
            let input = sbm_aig::aiger::parse(&corpus_aiger(i)).expect("parse");
            sbm_aig::aiger::write(&sbm_script_report(&input, &options).aig)
        })
        .collect();

    let mut recoveries = 0u64;
    for index in 0..JOBS {
        let key = format!("soak-{index}");
        let report = reports.get(&key).unwrap_or_else(|| panic!("lost {key}"));
        let network = networks.get(&key).unwrap_or_else(|| panic!("lost {key}"));

        assert_eq!(report.tool, "sbm-server", "{key}");
        assert_eq!(report.benchmarks, vec![key.clone()], "{key}");
        assert!(report.server.slices >= 1, "{key}: no slices recorded");
        assert!(
            report.sim_filter.hits + report.sim_filter.misses > 0,
            "{key}: sim-filter counters are dead"
        );
        recoveries += report.server.recoveries;

        // The acceptance bar: byte-identical to the uninterrupted
        // serial run, regardless of how often the job was preempted,
        // parked, resumed or crash-recovered.
        assert_eq!(
            network,
            &reference[index % CORPUS_SIZE],
            "{key}: result differs from the serial one-shot reference \
             (slices={}, parks={}, recoveries={})",
            report.server.slices,
            report.server.parks,
            report.server.recoveries
        );
    }
    assert!(
        recoveries >= 1,
        "the SIGKILL+restart must have crash-recovered at least one job"
    );

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&out);
}
