//! Asserts the workspace exit-code convention on the server binaries:
//! `0` success, `2` usage, `3` runtime/environment failure (the
//! validation code `1` needs a live server handing back wrong answers
//! and is exercised by the loadgen failure paths in the soak suite).
//! See also `crates/bench/tests/exit_codes.rs` and
//! `crates/lint/tests/exit_codes.rs`.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::process::Command;

use sbm_metrics::exit;

fn code_of(bin: &str, args: &[&str]) -> i32 {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn binary")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn server_and_loadgen_exit_codes_follow_the_workspace_convention() {
    let server = env!("CARGO_BIN_EXE_sbm-server");
    let loadgen = env!("CARGO_BIN_EXE_loadgen");

    // 2 — bad or missing flags, before anything touches the network.
    assert_eq!(code_of(server, &[]), exit::USAGE);
    assert_eq!(code_of(server, &["--bogus"]), exit::USAGE);
    assert_eq!(
        code_of(server, &["--root", "/tmp/x", "--workers", "zero"]),
        exit::USAGE
    );
    assert_eq!(code_of(loadgen, &[]), exit::USAGE);
    assert_eq!(code_of(loadgen, &["--addr"]), exit::USAGE);
    assert_eq!(
        code_of(loadgen, &["--addr", "127.0.0.1:1", "--jobs", "many"]),
        exit::USAGE
    );

    // 3 — the environment fails underneath a well-formed invocation.
    assert_eq!(
        code_of(server, &["--root", "/dev/null/not-a-dir"]),
        exit::RUNTIME
    );
    assert_eq!(
        code_of(
            loadgen,
            &[
                "--addr",
                "127.0.0.1:1",
                "--jobs",
                "1",
                "--out",
                "/dev/null/not-a-dir",
            ],
        ),
        exit::RUNTIME
    );
    // An unreachable server is a runtime failure, not a job failure.
    assert_eq!(
        code_of(
            loadgen,
            &["--addr", "127.0.0.1:1", "--jobs", "1", "--timeout-s", "1"],
        ),
        exit::RUNTIME
    );
}
