//! The durable job store: one directory per job under a common root,
//! written with the same tmp → fsync → rename → dir-fsync discipline as
//! `sbm-journal`, so a SIGKILL at any instant leaves every job either
//! fully recorded or invisible — never torn.
//!
//! Layout of `<root>/<fnv64(key) as 16 hex digits>/`:
//!
//! | file        | contents                                               |
//! |-------------|--------------------------------------------------------|
//! | `input.snap`| the submitted network, as an `sbm-journal` AIG snapshot|
//! | `job.meta`  | client, key, wire options, persisted lifecycle counters|
//! | `ckpt/`     | the script's own step-grained checkpoints              |
//! | `result.bin`| report JSON + optimized AIGER, once the job finishes   |
//! | `cancelled` | empty marker: the job was cancelled                    |
//!
//! `job.meta` is written **last** on admission: its presence is the
//! commit point that makes a job durable, and the server replies
//! `ACCEPTED` only after it lands. On restart, [`Store::scan`] walks
//! the root and classifies every committed job from its files alone.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sbm_aig::Aig;
use sbm_journal::{crc32, read_aig_snapshot, write_aig_snapshot, Fnv64, JournalError};

use crate::protocol::{get_options, put_options, put_str, put_u64, Cur, JobOptions};

/// Magic prefix of `job.meta` records.
const META_MAGIC: &[u8; 4] = b"SBMJ";
/// Magic prefix of `result.bin` records.
const RESULT_MAGIC: &[u8; 4] = b"SBMR";
/// Magic prefix of `report.partial` records.
const PARTIAL_MAGIC: &[u8; 4] = b"SBMP";

/// Lifecycle counters that survive restarts, persisted inside
/// `job.meta` and projected into the final report's `server` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistedCounters {
    /// Worker slices this job has consumed.
    pub slices: u64,
    /// Times the job was preempted and parked.
    pub parks: u64,
    /// Times the job resumed from a parked checkpoint.
    pub resumes: u64,
    /// Times a server restart re-admitted the job from disk.
    pub recoveries: u64,
    /// Microseconds spent queued (admission → first slice, plus
    /// park → next slice).
    pub queue_us: u64,
}

/// The durable identity and configuration of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMeta {
    /// Submitting tenant (fair-scheduling identity).
    pub client: String,
    /// Idempotency key.
    pub key: String,
    /// Wire options the job runs under.
    pub options: JobOptions,
    /// Restart-surviving lifecycle counters.
    pub counters: PersistedCounters,
}

/// A finished job's durable payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Strict-decoding `RunReport` JSON.
    pub report_json: String,
    /// The optimized network, in ASCII AIGER.
    pub aiger: String,
}

/// Disk-derived classification of a committed job at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanState {
    /// `result.bin` present and intact: serve RESULT from disk.
    Done,
    /// `cancelled` marker present.
    Cancelled,
    /// Neither: the job was queued/running/parked when the server
    /// died — re-admit it.
    InFlight,
}

/// One job found by [`Store::scan`].
#[derive(Debug, Clone)]
pub struct ScannedJob {
    /// The job's durable metadata.
    pub meta: JobMeta,
    /// Its disk-derived state.
    pub state: ScanState,
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A record failed its magic/length/CRC validation.
    Corrupt(&'static str),
    /// Snapshot read/write failure.
    Journal(JournalError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store record: {what}"),
            StoreError::Journal(e) => write!(f, "store snapshot error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<JournalError> for StoreError {
    fn from(e: JournalError) -> Self {
        StoreError::Journal(e)
    }
}

/// Hashes a job key to its directory name.
#[must_use]
pub fn key_hash(key: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(key.as_bytes());
    h.finish()
}

/// Writes `payload` to `path` atomically: tmp file in the same
/// directory, fsync, rename over the target, fsync the directory.
fn write_record(path: &Path, magic: &[u8; 4], payload: &[u8]) -> Result<(), StoreError> {
    let dir = path
        .parent()
        .ok_or(StoreError::Corrupt("record path has no parent"))?;
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(
        &u64::try_from(payload.len())
            .unwrap_or(u64::MAX)
            .to_le_bytes(),
    );
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());

    let file_name = path
        .file_name()
        .ok_or(StoreError::Corrupt("record path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = dir.join(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads and validates a record written by [`write_record`].
fn read_record(path: &Path, magic: &[u8; 4]) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 16 || &bytes[..4] != magic {
        return Err(StoreError::Corrupt("bad magic or short record"));
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[4..12]);
    let len = usize::try_from(u64::from_le_bytes(len8))
        .map_err(|_| StoreError::Corrupt("record length overflows"))?;
    let end = 12usize
        .checked_add(len)
        .ok_or(StoreError::Corrupt("record length overflows"))?;
    if bytes.len() != end + 4 {
        return Err(StoreError::Corrupt("record length mismatch"));
    }
    let payload = &bytes[12..end];
    let mut crc4 = [0u8; 4];
    crc4.copy_from_slice(&bytes[end..]);
    if crc32(payload) != u32::from_le_bytes(crc4) {
        return Err(StoreError::Corrupt("record CRC mismatch"));
    }
    Ok(payload.to_vec())
}

fn encode_meta(meta: &JobMeta) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, &meta.client);
    put_str(&mut buf, &meta.key);
    put_options(&mut buf, &meta.options);
    put_u64(&mut buf, meta.counters.slices);
    put_u64(&mut buf, meta.counters.parks);
    put_u64(&mut buf, meta.counters.resumes);
    put_u64(&mut buf, meta.counters.recoveries);
    put_u64(&mut buf, meta.counters.queue_us);
    buf
}

fn decode_meta(payload: &[u8]) -> Result<JobMeta, StoreError> {
    let corrupt = |_| StoreError::Corrupt("job.meta payload");
    let mut cur = Cur::new(payload);
    let meta = JobMeta {
        client: cur.str("client").map_err(corrupt)?,
        key: cur.str("key").map_err(corrupt)?,
        options: get_options(&mut cur).map_err(corrupt)?,
        counters: PersistedCounters {
            slices: cur.u64().map_err(corrupt)?,
            parks: cur.u64().map_err(corrupt)?,
            resumes: cur.u64().map_err(corrupt)?,
            recoveries: cur.u64().map_err(corrupt)?,
            queue_us: cur.u64().map_err(corrupt)?,
        },
    };
    cur.finish().map_err(corrupt)?;
    Ok(meta)
}

fn encode_result(result: &JobResult) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, &result.report_json);
    put_str(&mut buf, &result.aiger);
    buf
}

fn decode_result(payload: &[u8]) -> Result<JobResult, StoreError> {
    let corrupt = |_| StoreError::Corrupt("result.bin payload");
    let mut cur = Cur::new(payload);
    let result = JobResult {
        report_json: cur.str("report json").map_err(corrupt)?,
        aiger: cur.str("aiger").map_err(corrupt)?,
    };
    cur.finish().map_err(corrupt)?;
    Ok(result)
}

/// The on-disk job store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the root cannot be created.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        fs::create_dir_all(root)?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding `key`'s files.
    #[must_use]
    pub fn job_dir(&self, key: &str) -> PathBuf {
        self.root.join(format!("{:016x}", key_hash(key)))
    }

    /// The job's script-checkpoint directory.
    #[must_use]
    pub fn ckpt_dir(&self, key: &str) -> PathBuf {
        self.job_dir(key).join("ckpt")
    }

    /// Whether `key` has been durably admitted.
    #[must_use]
    pub fn exists(&self, key: &str) -> bool {
        self.job_dir(key).join("job.meta").is_file()
    }

    /// Durably admits a job: input snapshot and checkpoint directory
    /// first, `job.meta` last as the commit point.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when any write fails; a partial directory without
    /// `job.meta` is invisible to [`Store::scan`] and harmless.
    pub fn create_job(&self, meta: &JobMeta, input: &Aig) -> Result<(), StoreError> {
        let dir = self.job_dir(&meta.key);
        fs::create_dir_all(dir.join("ckpt"))?;
        write_aig_snapshot(&dir.join("input.snap"), input, key_hash(&meta.key), 0)?;
        self.write_meta(meta)
    }

    /// Rewrites `job.meta` (counter updates on park/recovery).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    pub fn write_meta(&self, meta: &JobMeta) -> Result<(), StoreError> {
        write_record(
            &self.job_dir(&meta.key).join("job.meta"),
            META_MAGIC,
            &encode_meta(meta),
        )
    }

    /// Reads a job's durable metadata.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when absent or corrupt.
    pub fn read_meta(&self, key: &str) -> Result<JobMeta, StoreError> {
        decode_meta(&read_record(
            &self.job_dir(key).join("job.meta"),
            META_MAGIC,
        )?)
    }

    /// Reads the submitted network back.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the snapshot is absent or corrupt.
    pub fn read_input(&self, key: &str) -> Result<Aig, StoreError> {
        let (aig, _) = read_aig_snapshot(&self.job_dir(key).join("input.snap"))?;
        Ok(aig)
    }

    /// Durably records a finished job's result.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    pub fn write_result(&self, key: &str, result: &JobResult) -> Result<(), StoreError> {
        write_record(
            &self.job_dir(key).join("result.bin"),
            RESULT_MAGIC,
            &encode_result(result),
        )
    }

    /// Reads a finished job's result; `Ok(None)` when not finished.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a result file exists but fails
    /// validation, [`StoreError::Io`] on other filesystem failures.
    pub fn read_result(&self, key: &str) -> Result<Option<JobResult>, StoreError> {
        let path = self.job_dir(key).join("result.bin");
        match read_record(&path, RESULT_MAGIC) {
            Ok(payload) => Ok(Some(decode_result(&payload)?)),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Durably records the running total of a parked job's slice
    /// reports (a `RunReport` JSON string).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    pub fn write_partial_report(&self, key: &str, json: &str) -> Result<(), StoreError> {
        write_record(
            &self.job_dir(key).join("report.partial"),
            PARTIAL_MAGIC,
            json.as_bytes(),
        )
    }

    /// Reads the parked running-total report; `Ok(None)` when the job
    /// has never parked.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when present but damaged,
    /// [`StoreError::Io`] on other filesystem failures.
    pub fn read_partial_report(&self, key: &str) -> Result<Option<String>, StoreError> {
        let path = self.job_dir(key).join("report.partial");
        match read_record(&path, PARTIAL_MAGIC) {
            Ok(payload) => {
                Ok(Some(String::from_utf8(payload).map_err(|_| {
                    StoreError::Corrupt("report.partial is not UTF-8")
                })?))
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Durably marks a job cancelled.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    pub fn mark_cancelled(&self, key: &str) -> Result<(), StoreError> {
        write_record(&self.job_dir(key).join("cancelled"), META_MAGIC, &[])
    }

    /// Whether a job carries the cancelled marker.
    #[must_use]
    pub fn is_cancelled(&self, key: &str) -> bool {
        self.job_dir(key).join("cancelled").is_file()
    }

    /// Walks the root and classifies every durably admitted job, in
    /// deterministic (directory-name) order. Directories without a
    /// valid `job.meta` — torn admissions — are skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the root itself cannot be read.
    pub fn scan(&self) -> Result<Vec<ScannedJob>, StoreError> {
        let mut dirs: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                dirs.push(entry.path());
            }
        }
        dirs.sort();
        let mut jobs = Vec::new();
        for dir in dirs {
            let Ok(payload) = read_record(&dir.join("job.meta"), META_MAGIC) else {
                continue; // torn admission: never ACCEPTED, safe to skip
            };
            let Ok(meta) = decode_meta(&payload) else {
                continue;
            };
            let state = if read_record(&dir.join("result.bin"), RESULT_MAGIC)
                .map(|p| decode_result(&p).is_ok())
                .unwrap_or(false)
            {
                ScanState::Done
            } else if dir.join("cancelled").is_file() {
                ScanState::Cancelled
            } else {
                ScanState::InFlight
            };
            jobs.push(ScannedJob { meta, state });
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbm-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_meta(key: &str) -> JobMeta {
        JobMeta {
            client: "tenant".to_string(),
            key: key.to_string(),
            options: JobOptions::default(),
            counters: PersistedCounters {
                slices: 4,
                parks: 2,
                resumes: 2,
                recoveries: 1,
                queue_us: 1234,
            },
        }
    }

    fn tiny_aig() -> Aig {
        sbm_aig::aiger::parse("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n").expect("parse")
    }

    #[test]
    fn job_lifecycle_round_trips() {
        let root = tmp_root("lifecycle");
        let store = Store::open(&root).expect("open");
        let meta = sample_meta("job-a");
        store.create_job(&meta, &tiny_aig()).expect("create");
        assert!(store.exists("job-a"));
        assert!(!store.exists("job-b"));
        assert_eq!(store.read_meta("job-a").expect("meta"), meta);
        let input = store.read_input("job-a").expect("input");
        assert_eq!(input.num_inputs(), 2);

        assert_eq!(store.read_result("job-a").expect("none"), None);
        let result = JobResult {
            report_json: "{\"x\":1}".to_string(),
            aiger: "aag 0 0 0 0 0\n".to_string(),
        };
        store.write_result("job-a", &result).expect("result");
        assert_eq!(store.read_result("job-a").expect("some"), Some(result));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_classifies_jobs_and_skips_torn_admissions() {
        let root = tmp_root("scan");
        let store = Store::open(&root).expect("open");
        let aig = tiny_aig();

        store
            .create_job(&sample_meta("done"), &aig)
            .expect("create");
        store
            .write_result(
                "done",
                &JobResult {
                    report_json: "{}".to_string(),
                    aiger: "aag 0 0 0 0 0\n".to_string(),
                },
            )
            .expect("result");

        store
            .create_job(&sample_meta("cancelled"), &aig)
            .expect("create");
        store.mark_cancelled("cancelled").expect("cancel");

        store
            .create_job(&sample_meta("inflight"), &aig)
            .expect("create");

        // A torn admission: directory + snapshot but no job.meta.
        let torn = store.job_dir("torn");
        fs::create_dir_all(torn.join("ckpt")).expect("mkdir");

        let jobs = store.scan().expect("scan");
        assert_eq!(jobs.len(), 3);
        let state_of = |key: &str| {
            jobs.iter()
                .find(|j| j.meta.key == key)
                .map(|j| j.state)
                .expect("scanned")
        };
        assert_eq!(state_of("done"), ScanState::Done);
        assert_eq!(state_of("cancelled"), ScanState::Cancelled);
        assert_eq!(state_of("inflight"), ScanState::InFlight);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_records_are_reported_not_trusted() {
        let root = tmp_root("corrupt");
        let store = Store::open(&root).expect("open");
        store
            .create_job(&sample_meta("job"), &tiny_aig())
            .expect("create");

        // Flip one payload byte of job.meta: CRC must catch it.
        let meta_path = store.job_dir("job").join("job.meta");
        let mut bytes = fs::read(&meta_path).expect("read");
        bytes[13] ^= 0xFF;
        fs::write(&meta_path, &bytes).expect("write");
        assert!(matches!(
            store.read_meta("job"),
            Err(StoreError::Corrupt(_))
        ));
        // And scan treats the job as torn rather than recovering garbage.
        assert!(store.scan().expect("scan").is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
