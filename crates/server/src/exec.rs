//! The job server's execution core: admission control, per-client fair
//! scheduling, the preempting worker pool, and the TCP front-end.
//!
//! This module (together with `bin/loadgen.rs`) is one of the few files
//! sanctioned by `sbm-lint` to own raw concurrency primitives (rules
//! C001/C002): the rest of the workspace stays free of threads and
//! locks, and everything here funnels through one `Mutex<State>` plus
//! two condvars — no per-job locks, no lock ordering to get wrong.
//!
//! # Scheduling model
//!
//! Jobs are queued per client and dispatched round-robin across
//! clients, so one tenant submitting hundreds of jobs cannot starve
//! another submitting one. Admission is bounded: past
//! [`ServerConfig::queue_capacity`] queued jobs, SUBMIT gets a typed
//! `BUSY` reply (backpressure), never an unbounded queue.
//!
//! # Preemption & durability
//!
//! A worker runs a job for one *slice* under a child [`Budget`]
//! ([`Budget::child`]) of the job's own deadline budget. A job whose
//! slice expires is *parked*: the script's own step checkpoint (written
//! under the job's `ckpt/` directory, every step, in canonical mode)
//! is its durable state, the slice's partial report is absorbed into a
//! durable running total, and the job re-enters the queue to resume —
//! never to restart. Slices escalate geometrically with each park so a
//! job always outgrows its slice eventually. Because every job runs the
//! serial, canonical-steps pipeline, a park/resume chain reproduces the
//! uninterrupted run bit for bit.
//!
//! On startup the server rescans the store root and re-admits every
//! durably admitted job that has neither a result nor a cancel marker —
//! a SIGKILL mid-run loses nothing and duplicates nothing (SUBMIT is
//! durable *before* it is acknowledged, and idempotent by job key).

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use sbm_budget::Budget;
use sbm_core::script::{sbm_script_budgeted, sbm_script_resumable_budgeted};
use sbm_metrics::{RunReport, ServerCounters, Timer};

use crate::job::{job_deadline, job_sbm_options};
use crate::protocol::{read_frame, write_frame, JobState, Reply, Request};
use crate::store::{JobMeta, JobResult, PersistedCounters, ScanState, Store, StoreError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port).
    pub addr: String,
    /// Durable store root.
    pub root: PathBuf,
    /// Worker threads executing job slices.
    pub workers: usize,
    /// Maximum queued (admitted, not yet finished) jobs before SUBMIT
    /// answers BUSY.
    pub queue_capacity: usize,
    /// Base execution slice; doubles with each park of a job (capped
    /// at 2^6 × base) so long jobs still finish.
    pub slice: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            root: PathBuf::from("sbm-server-store"),
            workers: 2,
            queue_capacity: 256,
            slice: Duration::from_millis(200),
        }
    }
}

/// Why the server could not start or run.
#[derive(Debug)]
pub enum ServerError {
    /// Store open / recovery-scan failure.
    Store(StoreError),
    /// Socket failure (bind/accept).
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Store(e) => write!(f, "store error: {e}"),
            ServerError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// How the server is (not) stopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopMode {
    Run,
    /// Finish every queued job, then exit.
    Drain,
    /// Park running slices and exit now.
    Halt,
}

/// One job's in-memory record (the durable twin lives in the store).
struct JobEntry {
    meta: JobMeta,
    state: JobState,
    detail: String,
    /// Whole-job deadline budget; CANCEL cancels it and every running
    /// slice budget observes the cancellation through the parent chain.
    job_budget: Budget,
    /// Times a queue-wait span since the job last entered the queue.
    queued: Option<Timer>,
    cancel_requested: bool,
}

/// The lock-guarded scheduler state.
struct State {
    jobs: BTreeMap<String, JobEntry>,
    /// Per-client FIFO queues of job keys.
    queues: BTreeMap<String, VecDeque<String>>,
    /// Round-robin order over clients (insertion order, stable).
    rr_clients: Vec<String>,
    rr_cursor: usize,
    queued: usize,
    running: usize,
    stop: StopMode,
}

impl State {
    /// Enqueues `key` on `client`'s queue, registering the client in
    /// the round-robin ring on first sight.
    fn enqueue(&mut self, client: &str, key: String) {
        if !self.queues.contains_key(client) {
            self.rr_clients.push(client.to_string());
        }
        self.queues
            .entry(client.to_string())
            .or_default()
            .push_back(key);
        self.queued += 1;
    }

    /// Pops the next job key, fair round-robin across clients.
    fn pick(&mut self) -> Option<String> {
        let n = self.rr_clients.len();
        for i in 0..n {
            let idx = (self.rr_cursor + i) % n;
            let client = &self.rr_clients[idx];
            if let Some(queue) = self.queues.get_mut(client) {
                if let Some(key) = queue.pop_front() {
                    self.rr_cursor = (idx + 1) % n;
                    self.queued -= 1;
                    return Some(key);
                }
            }
        }
        None
    }

    /// Removes `key` from its client's queue (cancellation of a queued
    /// job). Returns whether it was queued.
    fn unqueue(&mut self, client: &str, key: &str) -> bool {
        if let Some(queue) = self.queues.get_mut(client) {
            if let Some(pos) = queue.iter().position(|k| k == key) {
                queue.remove(pos);
                self.queued -= 1;
                return true;
            }
        }
        false
    }
}

struct Shared {
    cfg: ServerConfig,
    store: Store,
    state: Mutex<State>,
    /// Signalled when work is enqueued or the stop mode changes.
    work_ready: Condvar,
}

/// A running job server: bound listener plus worker pool.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the store, recovers every in-flight job from disk, binds
    /// the listener and starts the worker pool. The accept loop itself
    /// runs in [`Server::run`].
    ///
    /// # Errors
    ///
    /// [`ServerError`] when the store or the listener cannot be set up.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServerError> {
        let store = Store::open(&cfg.root).map_err(ServerError::Store)?;
        let mut state = State {
            jobs: BTreeMap::new(),
            queues: BTreeMap::new(),
            rr_clients: Vec::new(),
            rr_cursor: 0,
            queued: 0,
            running: 0,
            stop: StopMode::Run,
        };
        // Crash recovery: every durably admitted job is either already
        // finished (serve its result from disk), cancelled, or in
        // flight — re-admit the latter exactly once.
        for scanned in store.scan().map_err(ServerError::Store)? {
            let mut meta = scanned.meta;
            let key = meta.key.clone();
            let (job_state, queued) = match scanned.state {
                ScanState::Done => (JobState::Done, None),
                ScanState::Cancelled => (JobState::Cancelled, None),
                ScanState::InFlight => {
                    meta.counters.recoveries += 1;
                    // Best-effort persist; a failed write only loses the
                    // recovery count, not the job.
                    let _ = store.write_meta(&meta);
                    (JobState::Queued, Some(Timer::start()))
                }
            };
            let entry = JobEntry {
                job_budget: Budget::from_deadline(job_deadline(&meta.options)),
                meta,
                state: job_state,
                detail: String::new(),
                queued,
                cancel_requested: false,
            };
            if entry.state == JobState::Queued {
                let client = entry.meta.client.clone();
                state.enqueue(&client, key.clone());
            }
            state.jobs.insert(key, entry);
        }

        let listener = TcpListener::bind(&cfg.addr).map_err(ServerError::Io)?;
        let shared = Arc::new(Shared {
            cfg,
            store,
            state: Mutex::new(state),
            work_ready: Condvar::new(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            listener,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the socket has no local address.
    pub fn addr(&self) -> Result<SocketAddr, ServerError> {
        self.listener.local_addr().map_err(ServerError::Io)
    }

    /// Serves connections until a SHUTDOWN request arrives, then joins
    /// the worker pool (immediately for halt — running slices are
    /// cancelled and parked — or after the queue empties for drain).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the listener fails.
    pub fn run(self) -> Result<(), ServerError> {
        self.listener
            .set_nonblocking(true)
            .map_err(ServerError::Io)?;
        loop {
            {
                let state = lock(&self.shared.state);
                if state.stop != StopMode::Run {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || handle_conn(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(ServerError::Io(e)),
            }
        }
        // Halt: cancel every running slice so workers return promptly.
        {
            let state = lock(&self.shared.state);
            if state.stop == StopMode::Halt {
                for entry in state.jobs.values() {
                    if entry.state == JobState::Running {
                        entry.job_budget.cancel();
                    }
                }
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Locks a mutex, shrugging off poison: state mutations are small and
/// panic-free, and a poisoned scheduler must keep serving (the durable
/// store, not the in-memory map, is the source of truth).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// --- connection front-end ----------------------------------------------

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    loop {
        // Closed or broken connection: nothing to answer.
        let Ok(payload) = read_frame(&mut stream) else {
            return;
        };
        let reply = match Request::decode(&payload) {
            Ok(request) => handle_request(shared, request),
            Err(e) => Reply::Err {
                message: format!("bad request: {e}"),
            },
        };
        if write_frame(&mut stream, &reply.encode()).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Shared, request: Request) -> Reply {
    match request {
        Request::Submit {
            client,
            key,
            options,
            aiger,
        } => handle_submit(shared, &client, &key, options, &aiger),
        Request::Status { key } => {
            let state = lock(&shared.state);
            match state.jobs.get(&key) {
                Some(entry) => Reply::Status {
                    state: entry.state,
                    detail: entry.detail.clone(),
                },
                None => Reply::Status {
                    state: JobState::Unknown,
                    detail: String::new(),
                },
            }
        }
        Request::Result { key } => handle_result(shared, &key),
        Request::Cancel { key } => handle_cancel(shared, &key),
        Request::Shutdown { drain } => {
            let mut state = lock(&shared.state);
            state.stop = if drain {
                StopMode::Drain
            } else {
                StopMode::Halt
            };
            drop(state);
            shared.work_ready.notify_all();
            Reply::Ok
        }
    }
}

fn handle_submit(
    shared: &Shared,
    client: &str,
    key: &str,
    options: crate::protocol::JobOptions,
    aiger: &str,
) -> Reply {
    // Validate before admission so a bad submit never occupies a slot.
    if key.is_empty() {
        return Reply::Err {
            message: "empty job key".to_string(),
        };
    }
    if let Err(e) = job_sbm_options(&options) {
        return Reply::Err {
            message: format!("invalid options: {e}"),
        };
    }
    let input = match sbm_aig::aiger::parse(aiger) {
        Ok(aig) => aig,
        Err(e) => {
            return Reply::Err {
                message: format!("unparsable AIGER: {e:?}"),
            }
        }
    };

    let mut state = lock(&shared.state);
    if state.jobs.contains_key(key) {
        // Idempotent resubmit: the key is already admitted (possibly
        // finished); never a second run.
        return Reply::Accepted { known: true };
    }
    if state.stop != StopMode::Run {
        return Reply::Err {
            message: "server is shutting down".to_string(),
        };
    }
    if state.queued >= shared.cfg.queue_capacity {
        return Reply::Busy {
            queue_len: u32::try_from(state.queued).unwrap_or(u32::MAX),
        };
    }

    let meta = JobMeta {
        client: client.to_string(),
        key: key.to_string(),
        options,
        counters: PersistedCounters::default(),
    };
    // Durability before acknowledgement: the job directory (committed
    // by its `job.meta`) must exist before ACCEPTED goes out, so an
    // acknowledged job survives any crash. Holding the lock across this
    // write serializes admissions; acceptable at this server's scale,
    // and it keeps the in-memory map and the disk in lockstep.
    if let Err(e) = shared.store.create_job(&meta, &input) {
        return Reply::Err {
            message: format!("store write failed: {e}"),
        };
    }
    let entry = JobEntry {
        job_budget: Budget::from_deadline(job_deadline(&meta.options)),
        meta,
        state: JobState::Queued,
        detail: String::new(),
        queued: Some(Timer::start()),
        cancel_requested: false,
    };
    state.enqueue(client, key.to_string());
    state.jobs.insert(key.to_string(), entry);
    drop(state);
    shared.work_ready.notify_one();
    Reply::Accepted { known: false }
}

fn handle_result(shared: &Shared, key: &str) -> Reply {
    {
        let state = lock(&shared.state);
        match state.jobs.get(key) {
            None => {
                return Reply::NotReady {
                    state: JobState::Unknown,
                }
            }
            Some(entry) if entry.state != JobState::Done => {
                return Reply::NotReady { state: entry.state }
            }
            Some(_) => {}
        }
    }
    // Done: stream the durable result (read outside the lock).
    match shared.store.read_result(key) {
        Ok(Some(result)) => Reply::Result {
            report_json: result.report_json,
            aiger: result.aiger,
        },
        Ok(None) => Reply::Err {
            message: "result vanished from the store".to_string(),
        },
        Err(e) => Reply::Err {
            message: format!("result unreadable: {e}"),
        },
    }
}

fn handle_cancel(shared: &Shared, key: &str) -> Reply {
    let mut state = lock(&shared.state);
    let Some(entry) = state.jobs.get_mut(key) else {
        return Reply::Err {
            message: "unknown job".to_string(),
        };
    };
    match entry.state {
        JobState::Done | JobState::Failed | JobState::Cancelled => Reply::Ok,
        JobState::Running => {
            // Cooperative preemption: the running slice's budget is a
            // child of the job budget, so cancelling the parent stops
            // the slice at its next budget probe; the worker then
            // records the durable cancel marker.
            entry.cancel_requested = true;
            entry.job_budget.cancel();
            Reply::Ok
        }
        JobState::Queued | JobState::Parked => {
            entry.cancel_requested = true;
            entry.state = JobState::Cancelled;
            let client = entry.meta.client.clone();
            state.unqueue(&client, key);
            drop(state);
            let _ = shared.store.mark_cancelled(key);
            Reply::Ok
        }
        JobState::Unknown => Reply::Err {
            message: "unknown job".to_string(),
        },
    }
}

// --- worker pool --------------------------------------------------------

/// What one execution slice produced.
enum SliceOutcome {
    /// The script ran to completion within the slice.
    Finished {
        aiger: String,
        report: RunReport,
        resumed: bool,
    },
    /// The slice budget tripped; the checkpoint holds the progress.
    Preempted { report: RunReport, resumed: bool },
    /// The whole-job budget tripped (deadline or cancel).
    JobBudgetTripped,
    /// The script panicked through the pipeline's own isolation.
    Panicked(String),
    /// The store failed (unreadable input, invalid options).
    Broken(String),
}

fn worker_loop(shared: &Shared) {
    loop {
        // Claim the next job, or exit per the stop mode.
        let (key, job_budget, slice_budget) = {
            let mut state = lock(&shared.state);
            let key = loop {
                match state.stop {
                    StopMode::Halt => return,
                    StopMode::Drain if state.queued == 0 && state.running == 0 => return,
                    _ => {}
                }
                if let Some(key) = state.pick() {
                    break key;
                }
                state = match shared.work_ready.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            };
            let (job_budget, slice) = {
                let Some(entry) = state.jobs.get_mut(&key) else {
                    continue;
                };
                if entry.cancel_requested || entry.state == JobState::Cancelled {
                    entry.state = JobState::Cancelled;
                    drop(state);
                    let _ = shared.store.mark_cancelled(&key);
                    continue;
                }
                if let Some(timer) = entry.queued.take() {
                    entry.meta.counters.queue_us += duration_us(timer.stop());
                }
                entry.meta.counters.slices += 1;
                entry.state = JobState::Running;
                // Escalate the slice with each park so a job that
                // outlives its slice still converges (2^6 cap keeps it
                // bounded).
                let doublings = u32::try_from(entry.meta.counters.parks.min(6)).unwrap_or(6);
                (
                    entry.job_budget.clone(),
                    shared.cfg.slice.saturating_mul(1 << doublings),
                )
            };
            state.running += 1;
            let slice_budget = job_budget.child(slice);
            (key, job_budget, slice_budget)
        };
        shared.work_ready.notify_one();

        let outcome = run_slice(shared, &key, &job_budget, &slice_budget);
        settle_slice(shared, &key, outcome);
    }
}

/// Executes one slice of `key` outside the lock.
fn run_slice(shared: &Shared, key: &str, job_budget: &Budget, slice: &Budget) -> SliceOutcome {
    let input = match shared.store.read_input(key) {
        Ok(aig) => aig,
        Err(e) => return SliceOutcome::Broken(format!("input unreadable: {e}")),
    };
    let meta = match shared.store.read_meta(key) {
        Ok(meta) => meta,
        Err(e) => return SliceOutcome::Broken(format!("meta unreadable: {e}")),
    };
    let mut options = match job_sbm_options(&meta.options) {
        Ok(o) => o,
        Err(e) => return SliceOutcome::Broken(format!("options invalid: {e}")),
    };
    options.checkpoint_dir = Some(shared.store.ckpt_dir(key));

    // The PR 3 ladder, job-server edition: resume from the parked
    // checkpoint when one exists; fall back to a fresh (checkpointing)
    // run when it doesn't or is damaged; isolate panics that escape the
    // pipeline's own per-engine isolation.
    let run = catch_unwind(AssertUnwindSafe(|| {
        match sbm_script_resumable_budgeted(&input, &options, slice) {
            Ok(out) => (out, true),
            Err(_) => (sbm_script_budgeted(&input, &options, slice), false),
        }
    }));
    let (out, resumed) = match run {
        Ok(pair) => pair,
        Err(panic) => return SliceOutcome::Panicked(panic_message(&panic)),
    };
    let report = out.stats.run_report();
    if job_budget.check().is_err() {
        // Deadline or CANCEL — either way the whole job is over.
        return SliceOutcome::JobBudgetTripped;
    }
    if slice.check().is_err() {
        return SliceOutcome::Preempted { report, resumed };
    }
    SliceOutcome::Finished {
        aiger: sbm_aig::aiger::write(&out.aig),
        report,
        resumed,
    }
}

/// Applies a slice's outcome: durable writes first, then the in-memory
/// transition under the lock.
fn settle_slice(shared: &Shared, key: &str, outcome: SliceOutcome) {
    // Read whatever context the transition needs under the lock once.
    let (counters, cancel_requested) = {
        let mut state = lock(&shared.state);
        state.running -= 1;
        match state.jobs.get_mut(key) {
            Some(entry) => {
                if let SliceOutcome::Finished { resumed, .. }
                | SliceOutcome::Preempted { resumed, .. } = &outcome
                {
                    if *resumed {
                        entry.meta.counters.resumes += 1;
                    }
                }
                if matches!(outcome, SliceOutcome::Preempted { .. }) {
                    entry.meta.counters.parks += 1;
                }
                (entry.meta.counters, entry.cancel_requested)
            }
            None => (PersistedCounters::default(), false),
        }
    };

    let transition = match outcome {
        SliceOutcome::Finished {
            aiger,
            report,
            resumed: _,
        } => {
            let report_json = compose_final_report(shared, key, report, counters);
            match shared
                .store
                .write_result(key, &JobResult { report_json, aiger })
            {
                Ok(()) => (JobState::Done, String::new(), false),
                Err(e) => (JobState::Failed, format!("result write failed: {e}"), false),
            }
        }
        SliceOutcome::Preempted { report, resumed: _ } => {
            // Fold this slice's pipeline counters into the durable
            // running total so the final report covers every slice.
            let mut partial = report;
            if let Ok(Some(json)) = shared.store.read_partial_report(key) {
                if let Ok(prior) = RunReport::from_json(&json) {
                    partial.absorb(&prior);
                }
            }
            let _ = shared.store.write_partial_report(key, &partial.to_json());
            (JobState::Parked, String::new(), true)
        }
        SliceOutcome::JobBudgetTripped => {
            if cancel_requested {
                let _ = shared.store.mark_cancelled(key);
                (JobState::Cancelled, String::new(), false)
            } else {
                (JobState::Failed, "job deadline exceeded".to_string(), false)
            }
        }
        SliceOutcome::Panicked(msg) => (JobState::Failed, format!("panic: {msg}"), false),
        SliceOutcome::Broken(msg) => (JobState::Failed, msg, false),
    };

    let (new_state, detail, requeue) = transition;
    let mut state = lock(&shared.state);
    // Persist the counter mutations (best-effort: a failed meta write
    // costs counters, never correctness).
    if let Some(entry) = state.jobs.get_mut(key) {
        entry.state = new_state;
        entry.detail = detail;
        let _ = shared.store.write_meta(&entry.meta);
        if requeue {
            entry.queued = Some(Timer::start());
            let client = entry.meta.client.clone();
            state.enqueue(&client, key.to_string());
        }
    }
    drop(state);
    shared.work_ready.notify_all();
}

/// Builds the final `RunReport` for a finished job: the last slice's
/// pipeline report, every parked slice's counters absorbed, identity
/// fields set to the server's, and the `server` block filled from the
/// job's persisted lifecycle counters.
fn compose_final_report(
    shared: &Shared,
    key: &str,
    mut report: RunReport,
    counters: PersistedCounters,
) -> String {
    if let Ok(Some(json)) = shared.store.read_partial_report(key) {
        if let Ok(prior) = RunReport::from_json(&json) {
            report.absorb(&prior);
        }
    }
    report.tool = "sbm-server".to_string();
    report.scale = "server".to_string();
    report.threads = 1;
    report.benchmarks = vec![key.to_string()];
    report.server = ServerCounters {
        slices: counters.slices,
        parks: counters.parks,
        resumes: counters.resumes,
        recoveries: counters.recoveries,
        queue_us: counters.queue_us,
    };
    report.to_json()
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;

    #[test]
    fn round_robin_pick_is_fair_across_clients() {
        let mut state = State {
            jobs: BTreeMap::new(),
            queues: BTreeMap::new(),
            rr_clients: Vec::new(),
            rr_cursor: 0,
            queued: 0,
            running: 0,
            stop: StopMode::Run,
        };
        // Client A floods; client B submits one job.
        for i in 0..5 {
            state.enqueue("a", format!("a{i}"));
        }
        state.enqueue("b", "b0".to_string());
        assert_eq!(state.queued, 6);

        let picks: Vec<String> = std::iter::from_fn(|| state.pick()).collect();
        assert_eq!(state.queued, 0);
        // B's single job is dispatched second, not sixth.
        assert_eq!(
            picks,
            ["a0", "b0", "a1", "a2", "a3", "a4"]
                .iter()
                .map(|s| (*s).to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unqueue_removes_only_the_requested_job() {
        let mut state = State {
            jobs: BTreeMap::new(),
            queues: BTreeMap::new(),
            rr_clients: Vec::new(),
            rr_cursor: 0,
            queued: 0,
            running: 0,
            stop: StopMode::Run,
        };
        state.enqueue("a", "a0".to_string());
        state.enqueue("a", "a1".to_string());
        assert!(state.unqueue("a", "a0"));
        assert!(!state.unqueue("a", "a0"));
        assert_eq!(state.queued, 1);
        assert_eq!(state.pick(), Some("a1".to_string()));
    }
}
