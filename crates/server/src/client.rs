//! A small blocking client for the framed job-server protocol, used by
//! `loadgen`, the soak test and any embedding tool.
//!
//! One [`Client`] wraps one TCP connection; requests are strictly
//! request→reply, so the type is deliberately not `Sync` — use one
//! client per thread (they are cheap).

use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, JobOptions, JobState, ProtocolError, Reply, Request,
};

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
}

/// A client-side failure: transport/protocol trouble, or a typed
/// server-side refusal.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Protocol(ProtocolError),
    /// The server replied with something the request cannot accept
    /// (e.g. an `ERR` for a SUBMIT).
    Unexpected(String),
    /// The server reported a request-level error.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// What a SUBMIT produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted now.
    Accepted,
    /// Already admitted (idempotent resubmit).
    AlreadyKnown,
    /// Admission queue full; retry after backoff.
    Busy {
        /// Queue length at rejection.
        queue_len: u32,
    },
}

/// A finished job's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPayload {
    /// Strict-decoding `RunReport` JSON.
    pub report_json: String,
    /// The optimized circuit, in ASCII AIGER.
    pub aiger: String,
}

impl Client {
    /// Connects to a server address (e.g. `"127.0.0.1:4000"`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on connect failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        Ok(Client { stream })
    }

    /// Sets both socket timeouts, so a killed server surfaces as an
    /// error instead of a hang.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the socket rejects the timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(ProtocolError::Io)?;
        self.stream
            .set_write_timeout(Some(timeout))
            .map_err(ProtocolError::Io)?;
        Ok(())
    }

    fn round_trip(&mut self, request: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Ok(Reply::decode(&payload)?)
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a typed refusal (bad AIGER, bad
    /// options, draining server), [`ClientError`] otherwise.
    pub fn submit(
        &mut self,
        client: &str,
        key: &str,
        options: JobOptions,
        aiger: &str,
    ) -> Result<SubmitOutcome, ClientError> {
        match self.round_trip(&Request::Submit {
            client: client.to_string(),
            key: key.to_string(),
            options,
            aiger: aiger.to_string(),
        })? {
            Reply::Accepted { known: false } => Ok(SubmitOutcome::Accepted),
            Reply::Accepted { known: true } => Ok(SubmitOutcome::AlreadyKnown),
            Reply::Busy { queue_len } => Ok(SubmitOutcome::Busy { queue_len }),
            Reply::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Queries a job's lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn status(&mut self, key: &str) -> Result<(JobState, String), ClientError> {
        match self.round_trip(&Request::Status {
            key: key.to_string(),
        })? {
            Reply::Status { state, detail } => Ok((state, detail)),
            Reply::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches a finished job's result; `Ok(None)` (with the current
    /// state) while the job is still pending.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    #[allow(clippy::type_complexity)]
    pub fn result(&mut self, key: &str) -> Result<Result<JobPayload, JobState>, ClientError> {
        match self.round_trip(&Request::Result {
            key: key.to_string(),
        })? {
            Reply::Result { report_json, aiger } => Ok(Ok(JobPayload { report_json, aiger })),
            Reply::NotReady { state } => Ok(Err(state)),
            Reply::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is unknown.
    pub fn cancel(&mut self, key: &str) -> Result<(), ClientError> {
        match self.round_trip(&Request::Cancel {
            key: key.to_string(),
        })? {
            Reply::Ok => Ok(()),
            Reply::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to stop (`drain`: finish queued work first).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn shutdown(&mut self, drain: bool) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown { drain })? {
            Reply::Ok => Ok(()),
            Reply::Err { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
