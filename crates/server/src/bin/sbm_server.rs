//! The `sbm-server` daemon: binds a TCP port, recovers any in-flight
//! jobs from its store root, and serves the framed job protocol until
//! a SHUTDOWN request arrives.
//!
//! ```text
//! sbm-server --root DIR [--addr HOST:PORT] [--addr-file PATH]
//!            [--workers N] [--queue-capacity N] [--slice-ms N]
//! ```
//!
//! With `--addr 127.0.0.1:0` the OS picks the port; `--addr-file`
//! writes the bound address to a file (atomically) so test harnesses
//! and load generators can find a freshly restarted server without
//! racing its stdout.

use std::path::PathBuf;
use std::time::Duration;

use sbm_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sbm-server --root DIR [--addr HOST:PORT] [--addr-file PATH] \
         [--workers N] [--queue-capacity N] [--slice-ms N]"
    );
    std::process::exit(sbm_metrics::exit::USAGE);
}

fn parse_num(value: &str, what: &str) -> u64 {
    match value.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("sbm-server: {what} must be a positive integer, got `{value}`");
            std::process::exit(sbm_metrics::exit::USAGE);
        }
    }
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut root: Option<PathBuf> = None;
    let mut addr_file: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v,
                None => {
                    eprintln!("sbm-server: {flag} needs a value");
                    std::process::exit(sbm_metrics::exit::USAGE);
                }
            }
        };
        match flag {
            "--root" => root = Some(PathBuf::from(value(i))),
            "--addr" => cfg.addr = value(i).to_string(),
            "--addr-file" => addr_file = Some(PathBuf::from(value(i))),
            "--workers" => cfg.workers = parse_num(value(i), "--workers") as usize,
            "--queue-capacity" => {
                cfg.queue_capacity = parse_num(value(i), "--queue-capacity") as usize;
            }
            "--slice-ms" => cfg.slice = Duration::from_millis(parse_num(value(i), "--slice-ms")),
            _ => usage(),
        }
        i += 2;
    }
    let Some(root) = root else { usage() };
    cfg.root = root;

    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sbm-server: startup failed: {e}");
            std::process::exit(sbm_metrics::exit::RUNTIME);
        }
    };
    let addr = match server.addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("sbm-server: no local address: {e}");
            std::process::exit(sbm_metrics::exit::RUNTIME);
        }
    };
    if let Some(path) = addr_file {
        // Atomic publish (tmp + rename) so readers never see a torn
        // address during a restart.
        let tmp = path.with_extension("tmp");
        let write =
            std::fs::write(&tmp, format!("{addr}\n")).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("sbm-server: cannot write {}: {e}", path.display());
            std::process::exit(sbm_metrics::exit::RUNTIME);
        }
    }
    println!("sbm-server listening on {addr}");

    if let Err(e) = server.run() {
        eprintln!("sbm-server: {e}");
        std::process::exit(sbm_metrics::exit::RUNTIME);
    }
}
