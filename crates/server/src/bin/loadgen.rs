//! `loadgen`: a multi-client load generator for `sbm-server`.
//!
//! ```text
//! loadgen (--addr HOST:PORT | --addr-file PATH) --jobs N [--clients N]
//!         [--out DIR] [--timeout-s N] [--cancel-every N] [--fault-ppm N]
//!         [--iterations N] [--tag NAME]
//! ```
//!
//! Spawns `--clients` concurrent client threads that push `--jobs`
//! total jobs from the deterministic mixed corpus, then poll until
//! every job settles. The generator is *restart-transparent*: on any
//! transport error it reconnects (re-reading `--addr-file`, which a
//! restarted server republishes) and resubmits — submissions are
//! idempotent by job key, so a kill-and-restart mid-run must end with
//! every job done exactly once; anything lost or duplicated is a
//! nonzero exit.
//!
//! With `--cancel-every N`, every Nth job is cancelled shortly after
//! submission and must settle as cancelled (or finish first — both are
//! accepted). With `--out DIR`, each finished job's `RunReport` JSON
//! and optimized AIGER are written there.
//!
//! Exit codes follow the workspace convention: 0 on success,
//! `VALIDATION` (1) when any job fails or the reports are wrong,
//! `USAGE` (2) for bad flags, `RUNTIME` (3) for environment failures
//! (timeout, unreachable server).
//!
//! Like `exec.rs`, this binary is sanctioned by `sbm-lint` to own raw
//! concurrency (client fan-out threads).

use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use sbm_metrics::{RunReport, Timer};
use sbm_server::{Client, ClientError, JobOptions, JobState, SubmitOutcome};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --addr-file PATH) --jobs N [--clients N] \
         [--out DIR] [--timeout-s N] [--cancel-every N] [--fault-ppm N] \
         [--iterations N] [--tag NAME]"
    );
    std::process::exit(sbm_metrics::exit::USAGE);
}

fn parse_num(value: &str, what: &str) -> u64 {
    match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("loadgen: {what} must be an integer, got `{value}`");
            std::process::exit(sbm_metrics::exit::USAGE);
        }
    }
}

/// Where to find the server now (re-resolved on every reconnect, so a
/// restarted server on a fresh port is picked up transparently).
#[derive(Clone)]
enum AddrSource {
    Fixed(String),
    File(PathBuf),
}

impl AddrSource {
    fn resolve(&self) -> Option<String> {
        match self {
            AddrSource::Fixed(addr) => Some(addr.clone()),
            AddrSource::File(path) => std::fs::read_to_string(path)
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty()),
        }
    }
}

#[derive(Clone)]
struct LoadPlan {
    addr: AddrSource,
    jobs: usize,
    clients: usize,
    out: Option<PathBuf>,
    timeout: Duration,
    cancel_every: usize,
    options: JobOptions,
    tag: String,
}

/// One settled job, as observed by a client thread.
enum Settled {
    Done,
    Cancelled,
    /// The server answered and the answer was wrong (job failed, bad
    /// report) — a `VALIDATION` failure.
    Failed(String),
    /// The environment gave out underneath the run (timeout, server
    /// never reachable, local I/O error) — a `RUNTIME` failure.
    Unreachable(String),
}

fn main() {
    let mut addr: Option<AddrSource> = None;
    let mut jobs = 0usize;
    let mut clients = 4usize;
    let mut out: Option<PathBuf> = None;
    let mut timeout = Duration::from_secs(300);
    let mut cancel_every = 0usize;
    let mut options = JobOptions::default();
    let mut tag = "load".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v,
                None => {
                    eprintln!("loadgen: {flag} needs a value");
                    std::process::exit(sbm_metrics::exit::USAGE);
                }
            }
        };
        match flag {
            "--addr" => addr = Some(AddrSource::Fixed(value(i).to_string())),
            "--addr-file" => addr = Some(AddrSource::File(PathBuf::from(value(i)))),
            "--jobs" => jobs = parse_num(value(i), "--jobs") as usize,
            "--clients" => clients = parse_num(value(i), "--clients").max(1) as usize,
            "--out" => out = Some(PathBuf::from(value(i))),
            "--timeout-s" => timeout = Duration::from_secs(parse_num(value(i), "--timeout-s")),
            "--cancel-every" => cancel_every = parse_num(value(i), "--cancel-every") as usize,
            "--fault-ppm" => {
                options.fault_rate_ppm =
                    u32::try_from(parse_num(value(i), "--fault-ppm")).unwrap_or(u32::MAX);
                options.fault_seed = 0xC0FFEE;
            }
            "--iterations" => {
                options.iterations =
                    u32::try_from(parse_num(value(i), "--iterations").max(1)).unwrap_or(1);
            }
            "--tag" => tag = value(i).to_string(),
            _ => usage(),
        }
        i += 2;
    }
    let Some(addr) = addr else { usage() };
    if jobs == 0 {
        usage();
    }
    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("loadgen: cannot create {}: {e}", dir.display());
            std::process::exit(sbm_metrics::exit::RUNTIME);
        }
    }

    let plan = LoadPlan {
        addr,
        jobs,
        clients,
        out,
        timeout,
        cancel_every,
        options,
        tag,
    };

    // Fan out: client thread c owns jobs with index ≡ c (mod clients).
    let handles: Vec<_> = (0..plan.clients)
        .map(|c| {
            let plan = plan.clone();
            thread::spawn(move || client_thread(&plan, c))
        })
        .collect();

    let mut done = 0usize;
    let mut cancelled = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut outages: Vec<String> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(results) => {
                for (key, settled) in results {
                    match settled {
                        Settled::Done => done += 1,
                        Settled::Cancelled => cancelled += 1,
                        Settled::Failed(why) => failures.push(format!("{key}: {why}")),
                        Settled::Unreachable(why) => outages.push(format!("{key}: {why}")),
                    }
                }
            }
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }

    println!(
        "loadgen: {done} done, {cancelled} cancelled, {} failed of {} jobs",
        failures.len() + outages.len(),
        plan.jobs
    );
    for failure in failures.iter().chain(&outages) {
        eprintln!("loadgen: FAILED {failure}");
    }
    // A wrong answer outranks a missing one: any validation failure
    // exits VALIDATION even when outages occurred too.
    if !failures.is_empty() {
        std::process::exit(sbm_metrics::exit::VALIDATION);
    }
    if !outages.is_empty() {
        std::process::exit(sbm_metrics::exit::RUNTIME);
    }
    if done + cancelled != plan.jobs {
        eprintln!(
            "loadgen: accounted {} of {} jobs",
            done + cancelled,
            plan.jobs
        );
        std::process::exit(sbm_metrics::exit::VALIDATION);
    }
}

/// Connects with retry, re-resolving the address each attempt.
fn connect(plan: &LoadPlan, elapsed: &Timer) -> Result<Client, String> {
    loop {
        if elapsed.elapsed() > plan.timeout {
            return Err("timeout while (re)connecting".to_string());
        }
        if let Some(addr) = plan.addr.resolve() {
            if let Ok(mut client) = Client::connect(&addr) {
                if client.set_timeout(Duration::from_secs(10)).is_ok() {
                    return Ok(client);
                }
            }
        }
        thread::sleep(Duration::from_millis(100));
    }
}

fn client_thread(plan: &LoadPlan, client_index: usize) -> Vec<(String, Settled)> {
    let elapsed = Timer::start();
    let client_name = format!("client-{client_index}");
    let mut results = Vec::new();
    let mut conn: Option<Client> = None;

    let indices: Vec<usize> = (0..plan.jobs)
        .filter(|j| j % plan.clients == client_index)
        .collect();
    // Submit everything first (pipelined), then settle each job —
    // hundreds of jobs can be in flight server-side at once.
    let mut submitted: Vec<(usize, String)> = Vec::new();
    for &index in &indices {
        let key = format!("{}-{index}", plan.tag);
        match drive_submit(plan, &client_name, &key, index, &mut conn, &elapsed) {
            Ok(()) => submitted.push((index, key)),
            Err(settled) => results.push((key, settled)),
        }
    }
    // Cancellation mix: every Nth job gets a CANCEL racing its run.
    if plan.cancel_every > 0 {
        for (index, key) in &submitted {
            if index % plan.cancel_every == 0 {
                if let Some(c) = &mut conn {
                    let _ = c.cancel(key);
                }
            }
        }
    }
    for (index, key) in submitted {
        let settled = drive_to_completion(plan, &key, index, &mut conn, &elapsed);
        results.push((key, settled));
    }
    results
}

/// Submits one job, reconnecting and retrying through BUSY backpressure
/// and transport failures until accepted or timed out.
fn drive_submit(
    plan: &LoadPlan,
    client_name: &str,
    key: &str,
    index: usize,
    conn: &mut Option<Client>,
    elapsed: &Timer,
) -> Result<(), Settled> {
    let aiger = sbm_server::corpus::corpus_aiger(index);
    loop {
        if elapsed.elapsed() > plan.timeout {
            return Err(Settled::Unreachable("timeout while submitting".to_string()));
        }
        let c = match conn {
            Some(c) => c,
            None => {
                *conn = Some(connect(plan, elapsed).map_err(Settled::Unreachable)?);
                match conn {
                    Some(c) => c,
                    None => continue,
                }
            }
        };
        match c.submit(client_name, key, plan.options, &aiger) {
            Ok(SubmitOutcome::Accepted | SubmitOutcome::AlreadyKnown) => return Ok(()),
            Ok(SubmitOutcome::Busy { .. }) => thread::sleep(Duration::from_millis(50)),
            Err(ClientError::Server(msg)) => {
                return Err(Settled::Failed(format!("rejected: {msg}")))
            }
            Err(_) => {
                // Transport trouble (e.g. the server was killed):
                // reconnect and resubmit — idempotent by key.
                *conn = None;
                thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Polls one submitted job until it settles, riding through restarts.
fn drive_to_completion(
    plan: &LoadPlan,
    key: &str,
    index: usize,
    conn: &mut Option<Client>,
    elapsed: &Timer,
) -> Settled {
    loop {
        if elapsed.elapsed() > plan.timeout {
            return Settled::Unreachable("timeout while waiting".to_string());
        }
        let c = match conn {
            Some(c) => c,
            None => match connect(plan, elapsed) {
                Ok(fresh) => {
                    *conn = Some(fresh);
                    match conn {
                        Some(c) => c,
                        None => continue,
                    }
                }
                Err(why) => return Settled::Unreachable(why),
            },
        };
        match c.result(key) {
            Ok(Ok(payload)) => {
                return match record_result(plan, key, &payload) {
                    Ok(()) => Settled::Done,
                    Err(settled) => settled,
                };
            }
            Ok(Err(JobState::Cancelled)) => return Settled::Cancelled,
            Ok(Err(JobState::Failed)) => {
                let detail = c.status(key).map(|(_, detail)| detail).unwrap_or_default();
                return Settled::Failed(format!("job failed: {detail}"));
            }
            Ok(Err(JobState::Unknown)) => {
                // A restarted server forgot a job it never durably
                // admitted (or we raced the recovery scan): resubmit.
                let aiger = sbm_server::corpus::corpus_aiger(index);
                let _ = c.submit("resubmit", key, plan.options, &aiger);
                thread::sleep(Duration::from_millis(50));
            }
            Ok(Err(_pending)) => thread::sleep(Duration::from_millis(30)),
            Err(_) => {
                *conn = None;
                thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Validates and (optionally) writes a finished job's payload.
fn record_result(
    plan: &LoadPlan,
    key: &str,
    payload: &sbm_server::JobPayload,
) -> Result<(), Settled> {
    // Every report must strict-decode; a report that does not is a
    // server bug, not an I/O hiccup.
    let report = RunReport::from_json(&payload.report_json)
        .map_err(|e| Settled::Failed(format!("report does not strict-decode: {e}")))?;
    if report.tool != "sbm-server" {
        return Err(Settled::Failed(format!("report tool is `{}`", report.tool)));
    }
    if let Some(dir) = &plan.out {
        // A local write failure is our environment's fault, not the
        // server's answer being wrong.
        write_outputs(dir, key, payload)
            .map_err(|e| Settled::Unreachable(format!("cannot write outputs: {e}")))?;
    }
    Ok(())
}

fn write_outputs(dir: &Path, key: &str, payload: &sbm_server::JobPayload) -> std::io::Result<()> {
    std::fs::write(dir.join(format!("{key}.json")), &payload.report_json)?;
    std::fs::write(dir.join(format!("{key}.aag")), &payload.aiger)
}
