//! Translation of wire-level [`JobOptions`] into the pipeline's
//! [`SbmOptions`], pinned to the server's determinism contract.
//!
//! Every server job runs with `num_threads = 1`, `canonical_steps`
//! on, a checkpoint after every step, and no internal deadline (time
//! control is the scheduler's [`sbm_budget::Budget`] slice, not the
//! options'). Under that contract a job preempted at any step boundary
//! resumes bit-identically, and its final network is byte-identical to
//! a one-shot serial run with the same options — the property the soak
//! test asserts.

use std::time::Duration;

use sbm_check::{CheckLevel, FaultPlan};
use sbm_core::script::{OptionsError, SbmOptions};

use crate::protocol::JobOptions;

/// Why a SUBMIT's options were rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOptionsError {
    /// The check-level byte was not 0, 1, or 2.
    BadCheckLevel(u8),
    /// The pipeline's own validation rejected the derived options.
    Invalid(OptionsError),
}

impl std::fmt::Display for JobOptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOptionsError::BadCheckLevel(b) => {
                write!(f, "check level must be 0, 1 or 2, got {b}")
            }
            JobOptionsError::Invalid(e) => write!(f, "invalid job options: {e:?}"),
        }
    }
}

impl std::error::Error for JobOptionsError {}

/// Derives the pipeline options a server job runs under.
///
/// The checkpoint directory is left unset here; the executor points it
/// at the job's own `ckpt/` subdirectory before each slice.
///
/// # Errors
///
/// [`JobOptionsError`] when a field is out of range or the derived
/// configuration fails [`SbmOptions`] validation.
pub fn job_sbm_options(wire: &JobOptions) -> Result<SbmOptions, JobOptionsError> {
    let check_level = match wire.check {
        0 => CheckLevel::Off,
        1 => CheckLevel::Boundaries,
        2 => CheckLevel::Paranoid,
        other => return Err(JobOptionsError::BadCheckLevel(other)),
    };
    let fault_plan = if wire.fault_rate_ppm == 0 {
        None
    } else {
        Some(FaultPlan::uniform(
            wire.fault_seed,
            f64::from(wire.fault_rate_ppm) / 1_000_000.0,
        ))
    };
    SbmOptions::builder()
        .num_threads(1)
        .iterations(wire.iterations as usize)
        .sim_filter(wire.sim_filter)
        .check_level(check_level)
        .sat_budget((wire.sat_budget > 0).then_some(wire.sat_budget))
        .fault_plan(fault_plan)
        // The scheduler's budget is authoritative; the wire deadline is
        // enforced by the server, never by the script.
        .deadline(None)
        .canonical_steps(true)
        .checkpoint_every(1)
        .build()
        .map_err(JobOptionsError::Invalid)
}

/// The whole-job wall-clock deadline carried by the wire options, if
/// any. Enforced by the scheduler across slices, not inside the script.
#[must_use]
pub fn job_deadline(wire: &JobOptions) -> Option<Duration> {
    (wire.deadline_ms > 0).then(|| Duration::from_millis(wire.deadline_ms))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;
    use sbm_core::script::script_fingerprint;

    #[test]
    fn defaults_map_to_canonical_serial_options() {
        let o = job_sbm_options(&JobOptions::default()).expect("valid");
        assert_eq!(o.num_threads, 1);
        assert_eq!(o.iterations, 1);
        assert!(o.sim_filter);
        assert!(o.canonical_steps);
        assert_eq!(o.checkpoint_every, 1);
        assert_eq!(o.check_level, CheckLevel::Boundaries);
        assert_eq!(o.deadline, None);
        assert!(o.fault_plan.is_none());
        assert_eq!(o.sat_budget, Some(2_000));
        assert_eq!(job_deadline(&JobOptions::default()), None);
    }

    #[test]
    fn fault_rate_and_deadline_translate() {
        let wire = JobOptions {
            fault_seed: 9,
            fault_rate_ppm: 250_000,
            deadline_ms: 1_500,
            ..JobOptions::default()
        };
        let o = job_sbm_options(&wire).expect("valid");
        let plan = o.fault_plan.expect("plan");
        assert_eq!(plan.seed, 9);
        assert!((plan.panic_rate - 0.25).abs() < 1e-12);
        // The script-side deadline stays off even when the wire sets one.
        assert_eq!(o.deadline, None);
        assert_eq!(job_deadline(&wire), Some(Duration::from_millis(1_500)));
    }

    #[test]
    fn bad_fields_are_rejected() {
        assert!(matches!(
            job_sbm_options(&JobOptions {
                check: 3,
                ..JobOptions::default()
            }),
            Err(JobOptionsError::BadCheckLevel(3))
        ));
        assert!(matches!(
            job_sbm_options(&JobOptions {
                iterations: 0,
                ..JobOptions::default()
            }),
            Err(JobOptionsError::Invalid(OptionsError::ZeroIterations))
        ));
    }

    #[test]
    fn wire_deadline_does_not_perturb_the_fingerprint() {
        // Two submissions differing only in deadline must resume each
        // other's checkpoints: the deadline is scheduler policy, not
        // script configuration.
        let a = job_sbm_options(&JobOptions::default()).expect("valid");
        let b = job_sbm_options(&JobOptions {
            deadline_ms: 60_000,
            ..JobOptions::default()
        })
        .expect("valid");
        assert_eq!(script_fingerprint(&a), script_fingerprint(&b));
    }
}
