//! A deterministic mixed corpus of small benchmark circuits for the
//! load generator and the soak test.
//!
//! Each entry is built from its index alone — the same index always
//! yields the same network, on any machine — so a soak run can compare
//! a server-produced result byte-for-byte against an in-process serial
//! reference without shipping circuit files around.
//!
//! The circuits deliberately mix redundancy (`x·y + x·¬y`), duplicated
//! cones, XOR reconvergence and long unbalanced chains, so every engine
//! in the pipeline has work to do and the simulation filter sees both
//! hits and misses.

use sbm_aig::{Aig, Lit};

/// Number of distinct circuits the corpus cycles through.
pub const CORPUS_SIZE: usize = 12;

/// A tiny deterministic PRNG (splitmix64) for structural variety.
/// Statistical quality is irrelevant here; determinism is the point.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds corpus entry `index` (taken modulo [`CORPUS_SIZE`]).
#[must_use]
pub fn corpus_aig(index: usize) -> Aig {
    let index = index % CORPUS_SIZE;
    let mut rng = 0x5B00_u64.wrapping_add(index as u64);
    let num_inputs = 4 + index % 6; // 4..=9 inputs
    let mut aig = Aig::new();
    let x: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();

    // Redundant pair that collapses to x0 — resub/rewrite fodder.
    let t1 = aig.and(x[0], x[1]);
    let t2 = aig.and(x[0], !x[1]);
    let red = aig.or(t1, t2);

    // An unbalanced conjunction chain — balance fodder.
    let mut chain = red;
    for &xi in &x[1..] {
        chain = aig.and(chain, xi);
    }

    // A duplicated cone equal to the chain — sharing/CEC fodder.
    let mut dup = x[0];
    for &xi in &x[1..] {
        dup = aig.and(dup, xi);
    }

    // Index-dependent XOR/majority lattice for variety.
    let mut nodes = vec![chain, dup, red];
    let rounds = 3 + index % 4;
    for _ in 0..rounds {
        let r = mix(&mut rng) as usize;
        let a = nodes[r % nodes.len()];
        let b = x[(r >> 8) % x.len()];
        let c = nodes[(r >> 16) % nodes.len()];
        let node = match (r >> 24) % 3 {
            0 => aig.xor(a, b),
            1 => aig.maj3(a, b, c),
            _ => {
                let t = aig.or(a, b);
                aig.and(t, !c)
            }
        };
        nodes.push(node);
    }

    let zero = aig.xor(chain, dup); // constant false, a guaranteed win
    let last = *nodes.last().unwrap_or(&chain);
    let share = aig.or(chain, red);
    aig.add_output(zero);
    aig.add_output(last);
    aig.add_output(share);
    aig
}

/// The corpus entry as ASCII AIGER, ready for a SUBMIT frame.
#[must_use]
pub fn corpus_aiger(index: usize) -> String {
    sbm_aig::aiger::write(&corpus_aig(index))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;

    #[test]
    fn corpus_is_deterministic_and_distinct() {
        for i in 0..CORPUS_SIZE {
            assert_eq!(corpus_aiger(i), corpus_aiger(i), "entry {i} unstable");
            assert_eq!(
                corpus_aiger(i),
                corpus_aiger(i + CORPUS_SIZE),
                "entry {i} must wrap"
            );
        }
        let distinct: std::collections::BTreeSet<String> =
            (0..CORPUS_SIZE).map(corpus_aiger).collect();
        assert!(distinct.len() > CORPUS_SIZE / 2, "corpus too repetitive");
    }

    #[test]
    fn corpus_entries_parse_back_and_have_work() {
        for i in 0..CORPUS_SIZE {
            let aig = corpus_aig(i);
            let text = sbm_aig::aiger::write(&aig);
            let back = sbm_aig::aiger::parse(&text).expect("parse");
            assert!(back.num_ands() > 5, "entry {i} too trivial");
            assert!(back.num_inputs() >= 4);
        }
    }
}
