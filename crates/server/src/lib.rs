//! `sbm-server`: a fault-tolerant, multi-tenant job server for the SBM
//! synthesis pipeline.
//!
//! Zero external dependencies, like the rest of the workspace: the
//! front-end is a `std::net::TcpListener` speaking a length-prefixed
//! framed protocol ([`protocol`]), the scheduler is one mutex and two
//! condvars ([`exec`]), and durability is the `sbm-journal` write
//! discipline applied to a per-job directory store ([`store`]).
//!
//! The contract, end to end:
//!
//! * **Admitted means durable.** SUBMIT is acknowledged only after the
//!   job's input snapshot and metadata are on disk; a crash between
//!   acknowledgement and completion loses nothing.
//! * **Admitted means once.** Jobs are keyed; resubmitting a known key
//!   is acknowledged without creating a second run.
//! * **Preempted means parked, not lost.** Jobs run in budgeted slices
//!   ([`sbm_budget::Budget::child`]); an expired slice parks the job as
//!   a script checkpoint and the job later *resumes* — and because
//!   server jobs run the canonical serial pipeline, the resumed result
//!   is byte-identical to an uninterrupted run.
//! * **Results decode strictly.** A finished job streams its optimized
//!   AIGER plus a `RunReport` (schema v3, with the `server` counter
//!   block) that round-trips through the strict decoder.

pub mod client;
pub mod corpus;
pub mod exec;
pub mod job;
pub mod protocol;
pub mod store;

pub use client::{Client, ClientError, JobPayload, SubmitOutcome};
pub use exec::{Server, ServerConfig, ServerError};
pub use job::{job_deadline, job_sbm_options, JobOptionsError};
pub use protocol::{JobOptions, JobState, ProtocolError, Reply, Request, MAX_FRAME};
pub use store::{JobMeta, JobResult, PersistedCounters, ScanState, ScannedJob, Store, StoreError};
