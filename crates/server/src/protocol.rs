//! The framed wire protocol of `sbm-server`.
//!
//! Every message travels as one *frame*: a 4-byte little-endian payload
//! length followed by the payload, whose first byte is the message tag.
//! Inside a payload, integers are little-endian and strings are a `u32`
//! byte length followed by UTF-8 bytes. Frames are capped at
//! [`MAX_FRAME`] so a malformed or hostile length prefix can never force
//! a giant allocation.
//!
//! The protocol is deliberately version-stamped by its tags rather than
//! negotiable: a server and client from different builds fail loudly on
//! the first unknown tag, the same strictness stance as the
//! `RunReport` schema.

use std::fmt;
use std::io::{Read, Write};

/// Upper bound on one frame's payload, in bytes. Large enough for any
/// realistic AIGER + report pair, small enough that a hostile length
/// prefix cannot exhaust memory.
pub const MAX_FRAME: u32 = 32 * 1024 * 1024;

/// Job execution options carried by a SUBMIT, the integer-only wire form
/// of the `SbmOptions` knobs a tenant may set. (Rates travel as parts
/// per million so the wire stays float-free.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOptions {
    /// Script iterations (≥ 1).
    pub iterations: u32,
    /// Simulation-signature candidate filtering (the default: on).
    pub sim_filter: bool,
    /// Invariant-checking level: 0 off, 1 boundaries, 2 paranoid.
    pub check: u8,
    /// Whole-job wall-clock deadline in milliseconds (0 = unbounded).
    pub deadline_ms: u64,
    /// Fault-injection seed (meaningful only with a nonzero rate).
    pub fault_seed: u64,
    /// Fault-injection rate in parts per million (0 = no injection).
    pub fault_rate_ppm: u32,
    /// SAT conflict budget (0 = unbudgeted).
    pub sat_budget: u64,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            iterations: 1,
            sim_filter: true,
            check: 1,
            deadline_ms: 0,
            fault_seed: 0,
            fault_rate_ppm: 0,
            sat_budget: 2_000,
        }
    }
}

/// Lifecycle state of a job as reported to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// The server has never heard of this key (or forgot a failed job
    /// across a restart) — resubmit.
    Unknown,
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing a slice right now.
    Running,
    /// Preempted at the end of a slice; parked as a checkpoint, queued
    /// to resume.
    Parked,
    /// Finished; the result is ready to stream.
    Done,
    /// Execution failed (the message travels in STATUS/ERR replies).
    Failed,
    /// Cancelled by a CANCEL request.
    Cancelled,
}

impl JobState {
    fn to_byte(self) -> u8 {
        match self {
            JobState::Unknown => 0,
            JobState::Queued => 1,
            JobState::Running => 2,
            JobState::Parked => 3,
            JobState::Done => 4,
            JobState::Failed => 5,
            JobState::Cancelled => 6,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0 => JobState::Unknown,
            1 => JobState::Queued,
            2 => JobState::Running,
            3 => JobState::Parked,
            4 => JobState::Done,
            5 => JobState::Failed,
            6 => JobState::Cancelled,
            other => return Err(ProtocolError::BadValue("job state", u32::from(other))),
        })
    }
}

/// Client → server requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job: client id, idempotency key, options, AIGER text.
    Submit {
        /// Tenant identity used for fair scheduling.
        client: String,
        /// Idempotency key: resubmitting a known key never duplicates
        /// the job.
        key: String,
        /// Execution options.
        options: JobOptions,
        /// The circuit, in ASCII AIGER.
        aiger: String,
    },
    /// Query a job's lifecycle state.
    Status {
        /// The job key.
        key: String,
    },
    /// Fetch a finished job's report + optimized AIGER.
    Result {
        /// The job key.
        key: String,
    },
    /// Cancel a queued/running job.
    Cancel {
        /// The job key.
        key: String,
    },
    /// Stop the server: `drain = true` finishes queued work first,
    /// `false` parks in-flight jobs and exits immediately.
    Shutdown {
        /// Drain the queue before exiting.
        drain: bool,
    },
}

/// Server → client replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// SUBMIT accepted; `known` is true when the key already existed
    /// (idempotent resubmit — no second run happens).
    Accepted {
        /// The key was already admitted (or finished) before.
        known: bool,
    },
    /// SUBMIT rejected by admission control: the queue is full. Typed
    /// backpressure — the client backs off and retries.
    Busy {
        /// Queued jobs at rejection time.
        queue_len: u32,
    },
    /// STATUS reply.
    Status {
        /// Current lifecycle state.
        state: JobState,
        /// Failure detail for [`JobState::Failed`], empty otherwise.
        detail: String,
    },
    /// RESULT for a job that is not [`JobState::Done`] yet.
    NotReady {
        /// Current lifecycle state.
        state: JobState,
    },
    /// RESULT payload: the run report JSON and the optimized AIGER.
    Result {
        /// Strict-decoding `RunReport` JSON.
        report_json: String,
        /// The optimized circuit, in ASCII AIGER.
        aiger: String,
    },
    /// Request-level failure (unparsable AIGER, invalid options,
    /// draining server, …).
    Err {
        /// Human-readable reason.
        message: String,
    },
    /// CANCEL / SHUTDOWN acknowledged.
    Ok,
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// A frame length exceeded [`MAX_FRAME`].
    Oversized(u32),
    /// The payload ended before its declared contents.
    Truncated,
    /// An unknown message tag.
    BadTag(u8),
    /// A field held an out-of-range value.
    BadValue(&'static str, u32),
    /// A string field was not UTF-8.
    BadUtf8(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Truncated => write!(f, "frame payload truncated"),
            ProtocolError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::BadValue(what, v) => write!(f, "out-of-range {what}: {v}"),
            ProtocolError::BadUtf8(what) => write!(f, "non-UTF-8 {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Closed
        } else {
            ProtocolError::Io(e)
        }
    }
}

// --- payload primitives -------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).unwrap_or(u32::MAX));
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over one received payload.
pub(crate) struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtocolError> {
        let b = *self.data.get(self.pos).ok_or(ProtocolError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtocolError> {
        let end = self.pos.checked_add(4).ok_or(ProtocolError::Truncated)?;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtocolError> {
        let end = self.pos.checked_add(8).ok_or(ProtocolError::Truncated)?;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(ProtocolError::Truncated)?;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8(what))
    }

    pub(crate) fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ProtocolError::Truncated)
        }
    }
}

pub(crate) fn put_options(buf: &mut Vec<u8>, o: &JobOptions) {
    put_u32(buf, o.iterations);
    buf.push(u8::from(o.sim_filter));
    buf.push(o.check);
    put_u64(buf, o.deadline_ms);
    put_u64(buf, o.fault_seed);
    put_u32(buf, o.fault_rate_ppm);
    put_u64(buf, o.sat_budget);
}

pub(crate) fn get_options(cur: &mut Cur<'_>) -> Result<JobOptions, ProtocolError> {
    Ok(JobOptions {
        iterations: cur.u32()?,
        sim_filter: cur.u8()? != 0,
        check: cur.u8()?,
        deadline_ms: cur.u64()?,
        fault_seed: cur.u64()?,
        fault_rate_ppm: cur.u32()?,
        sat_budget: cur.u64()?,
    })
}

// --- message codec ------------------------------------------------------

impl Request {
    /// Serializes the request into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Submit {
                client,
                key,
                options,
                aiger,
            } => {
                buf.push(0x01);
                put_str(&mut buf, client);
                put_str(&mut buf, key);
                put_options(&mut buf, options);
                put_str(&mut buf, aiger);
            }
            Request::Status { key } => {
                buf.push(0x02);
                put_str(&mut buf, key);
            }
            Request::Result { key } => {
                buf.push(0x03);
                put_str(&mut buf, key);
            }
            Request::Cancel { key } => {
                buf.push(0x04);
                put_str(&mut buf, key);
            }
            Request::Shutdown { drain } => {
                buf.push(0x05);
                buf.push(u8::from(*drain));
            }
        }
        buf
    }

    /// Decodes a frame payload produced by [`Request::encode`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut cur = Cur::new(payload);
        let tag = cur.u8()?;
        let req = match tag {
            0x01 => Request::Submit {
                client: cur.str("client id")?,
                key: cur.str("job key")?,
                options: get_options(&mut cur)?,
                aiger: cur.str("aiger text")?,
            },
            0x02 => Request::Status {
                key: cur.str("job key")?,
            },
            0x03 => Request::Result {
                key: cur.str("job key")?,
            },
            0x04 => Request::Cancel {
                key: cur.str("job key")?,
            },
            0x05 => Request::Shutdown {
                drain: cur.u8()? != 0,
            },
            other => return Err(ProtocolError::BadTag(other)),
        };
        cur.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Serializes the reply into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Reply::Accepted { known } => {
                buf.push(0x81);
                buf.push(u8::from(*known));
            }
            Reply::Busy { queue_len } => {
                buf.push(0x82);
                put_u32(&mut buf, *queue_len);
            }
            Reply::Status { state, detail } => {
                buf.push(0x83);
                buf.push(state.to_byte());
                put_str(&mut buf, detail);
            }
            Reply::NotReady { state } => {
                buf.push(0x84);
                buf.push(state.to_byte());
            }
            Reply::Result { report_json, aiger } => {
                buf.push(0x85);
                put_str(&mut buf, report_json);
                put_str(&mut buf, aiger);
            }
            Reply::Err { message } => {
                buf.push(0x86);
                put_str(&mut buf, message);
            }
            Reply::Ok => buf.push(0x87),
        }
        buf
    }

    /// Decodes a frame payload produced by [`Reply::encode`].
    pub fn decode(payload: &[u8]) -> Result<Reply, ProtocolError> {
        let mut cur = Cur::new(payload);
        let tag = cur.u8()?;
        let reply = match tag {
            0x81 => Reply::Accepted {
                known: cur.u8()? != 0,
            },
            0x82 => Reply::Busy {
                queue_len: cur.u32()?,
            },
            0x83 => Reply::Status {
                state: JobState::from_byte(cur.u8()?)?,
                detail: cur.str("status detail")?,
            },
            0x84 => Reply::NotReady {
                state: JobState::from_byte(cur.u8()?)?,
            },
            0x85 => Reply::Result {
                report_json: cur.str("report json")?,
                aiger: cur.str("aiger text")?,
            },
            0x86 => Reply::Err {
                message: cur.str("error message")?,
            },
            0x87 => Reply::Ok,
            other => return Err(ProtocolError::BadTag(other)),
        };
        cur.finish()?;
        Ok(reply)
    }
}

// --- frame I/O ----------------------------------------------------------

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`ProtocolError::Io`] on socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on clean EOF before the length prefix,
/// [`ProtocolError::Oversized`] when the prefix exceeds [`MAX_FRAME`],
/// [`ProtocolError::Io`] on socket failure.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len_bytes) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Closed
        } else {
            ProtocolError::Io(e)
        });
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used)]

    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).expect("decode"), req);
        // Strictness: a trailing byte is rejected, not ignored.
        let mut longer = payload.clone();
        longer.push(0);
        assert!(Request::decode(&longer).is_err());
        // And any truncation fails rather than misparsing.
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Submit {
            client: "tenant-a".to_string(),
            key: "job-1".to_string(),
            options: JobOptions {
                iterations: 2,
                sim_filter: false,
                check: 2,
                deadline_ms: 30_000,
                fault_seed: 7,
                fault_rate_ppm: 1_000,
                sat_budget: 0,
            },
            aiger: "aag 0 0 0 0 0\n".to_string(),
        });
        round_trip_request(Request::Status {
            key: "job-1".to_string(),
        });
        round_trip_request(Request::Result { key: String::new() });
        round_trip_request(Request::Cancel {
            key: "job-\u{2603}".to_string(),
        });
        round_trip_request(Request::Shutdown { drain: true });
        round_trip_request(Request::Shutdown { drain: false });
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Accepted { known: false },
            Reply::Accepted { known: true },
            Reply::Busy { queue_len: 64 },
            Reply::Status {
                state: JobState::Parked,
                detail: String::new(),
            },
            Reply::Status {
                state: JobState::Failed,
                detail: "panic: boom".to_string(),
            },
            Reply::NotReady {
                state: JobState::Running,
            },
            Reply::Result {
                report_json: "{}".to_string(),
                aiger: "aag 0 0 0 0 0\n".to_string(),
            },
            Reply::Err {
                message: "bad aiger".to_string(),
            },
            Reply::Ok,
        ] {
            let payload = reply.encode();
            assert_eq!(Reply::decode(&payload).expect("decode"), reply);
        }
    }

    #[test]
    fn unknown_tags_and_states_are_rejected() {
        assert!(matches!(
            Request::decode(&[0x7f]),
            Err(ProtocolError::BadTag(0x7f))
        ));
        assert!(matches!(
            Reply::decode(&[0x01]),
            Err(ProtocolError::BadTag(0x01))
        ));
        // Status reply carrying an out-of-range state byte.
        assert!(matches!(
            Reply::decode(&[0x84, 99]),
            Err(ProtocolError::BadValue("job state", 99))
        ));
        assert!(matches!(
            Request::decode(&[]),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        let mut read = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut read).expect("read"), b"hello");
        // EOF between frames is a clean close.
        assert!(matches!(read_frame(&mut read), Err(ProtocolError::Closed)));

        // A hostile length prefix is rejected before any allocation.
        let hostile = (MAX_FRAME + 1).to_le_bytes();
        let mut read = std::io::Cursor::new(hostile.to_vec());
        assert!(matches!(
            read_frame(&mut read),
            Err(ProtocolError::Oversized(_))
        ));

        // A truncated payload is an error, not a short read.
        let mut torn = Vec::new();
        torn.extend_from_slice(&10u32.to_le_bytes());
        torn.extend_from_slice(b"only4");
        let mut read = std::io::Cursor::new(torn);
        assert!(read_frame(&mut read).is_err());
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        // A Status request whose key bytes are invalid UTF-8.
        let mut payload = vec![0x02];
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::BadUtf8("job key"))
        ));
    }
}
