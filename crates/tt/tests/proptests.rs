//! Property-based tests for truth-table algebra.

use proptest::prelude::*;
use sbm_tt::TruthTable;

/// Strategy producing an arbitrary table over `n` vars (n in 1..=9).
fn arb_table() -> impl Strategy<Value = TruthTable> {
    (1usize..=9).prop_flat_map(|n| {
        let words = if n <= 6 { 1 } else { 1 << (n - 6) };
        proptest::collection::vec(any::<u64>(), words)
            .prop_map(move |ws| TruthTable::from_words(n, ws))
    })
}

/// Two tables over the same variable count.
fn arb_pair() -> impl Strategy<Value = (TruthTable, TruthTable)> {
    (1usize..=9).prop_flat_map(|n| {
        let words = if n <= 6 { 1 } else { 1 << (n - 6) };
        (
            proptest::collection::vec(any::<u64>(), words)
                .prop_map(move |ws| TruthTable::from_words(n, ws)),
            proptest::collection::vec(any::<u64>(), words)
                .prop_map(move |ws| TruthTable::from_words(n, ws)),
        )
    })
}

proptest! {
    #[test]
    fn double_negation(t in arb_table()) {
        prop_assert_eq!(!&!&t, t);
    }

    #[test]
    fn xor_self_is_zero(t in arb_table()) {
        prop_assert!((&t ^ &t).is_zero());
    }

    #[test]
    fn de_morgan((a, b) in arb_pair()) {
        prop_assert_eq!(!&(&a & &b), &!&a | &!&b);
        prop_assert_eq!(!&(&a | &b), &!&a & &!&b);
    }

    #[test]
    fn absorption((a, b) in arb_pair()) {
        prop_assert_eq!(&a & &(&a | &b), a.clone());
        prop_assert_eq!(&a | &(&a & &b), a);
    }

    #[test]
    fn shannon_expansion(t in arb_table()) {
        for v in 0..t.num_vars() {
            let x = TruthTable::var(t.num_vars(), v);
            prop_assert_eq!(x.ite(&t.cofactor1(v), &t.cofactor0(v)), t.clone());
        }
    }

    #[test]
    fn cofactor_removes_dependence(t in arb_table()) {
        for v in 0..t.num_vars() {
            prop_assert!(!t.cofactor0(v).depends_on(v));
            prop_assert!(!t.cofactor1(v).depends_on(v));
        }
    }

    #[test]
    fn boolean_difference_recovers_f((f, g) in arb_pair()) {
        // Core identity of the paper: f = (∂f/∂g) ⊕ g.
        let d = f.boolean_difference(&g);
        prop_assert_eq!(&d ^ &g, f);
    }

    #[test]
    fn quantification_bounds(t in arb_table()) {
        for v in 0..t.num_vars() {
            prop_assert!(t.forall(v).implies(&t));
            prop_assert!(t.implies(&t.exists(v)));
        }
    }

    #[test]
    fn count_ones_matches_bits(t in arb_table()) {
        let slow = (0..t.num_bits()).filter(|&i| t.bit(i)).count() as u64;
        prop_assert_eq!(t.count_ones(), slow);
    }

    #[test]
    fn extend_keeps_count_ratio(t in arb_table()) {
        let n = t.num_vars();
        if n < 9 {
            let e = t.extend_to(n + 1);
            prop_assert_eq!(e.count_ones(), 2 * t.count_ones());
        }
    }
}
