//! Bit-parallel truth tables — the small-window reasoning engine of the SBM
//! framework.
//!
//! Truth tables are a canonical representation of a Boolean function where the
//! function values are listed for all input combinations (Section II-A of the
//! paper). When Boolean methods are applied to small windows of logic
//! (≈ 15 inputs), truth tables enable fast computation and equivalence
//! checking. The SBM framework uses them for functional filtering of
//! resubstitution candidates and for window-level don't-care reasoning.
//!
//! # Example
//!
//! ```
//! use sbm_tt::TruthTable;
//!
//! // f = x0 & (x1 | x2) over three variables
//! let x0 = TruthTable::var(3, 0);
//! let x1 = TruthTable::var(3, 1);
//! let x2 = TruthTable::var(3, 2);
//! let f = &x0 & &(&x1 | &x2);
//! assert_eq!(f.count_ones(), 3);
//! assert!(f.support().contains(&0));
//! ```

mod table;
pub mod words;

pub use table::TruthTable;

/// The maximum number of variables a [`TruthTable`] supports.
///
/// 2^20 bits = 128 KiB per table; windows in the SBM framework are far
/// smaller (the paper uses ≈ 15-input windows), but headroom is cheap.
pub const MAX_VARS: usize = 20;
