//! The [`TruthTable`] type and its operations.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::MAX_VARS;

/// Precomputed projection masks for variables 0..6 within a single word.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A truth table over a fixed number of Boolean variables.
///
/// The table stores one bit per input assignment, packed into 64-bit words
/// (least-significant bit = assignment `00…0`). All bit positions beyond
/// `2^num_vars` are kept zero, which makes equality, hashing and counting
/// well-defined for tables with fewer than 6 variables.
///
/// Operator overloads (`&`, `|`, `^`, `!`) are provided on references so that
/// expressions do not consume their operands.
///
/// # Example
///
/// ```
/// use sbm_tt::TruthTable;
///
/// let a = TruthTable::var(2, 0);
/// let b = TruthTable::var(2, 1);
/// let xor = &a ^ &b;
/// assert_eq!(xor.count_ones(), 2);
/// assert_eq!(&(&a & &b) | &xor, &a | &b);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Number of 64-bit words needed for an `n`-variable table.
    fn word_count(num_vars: usize) -> usize {
        if num_vars <= 6 {
            1
        } else {
            1 << (num_vars - 6)
        }
    }

    /// Mask selecting the valid bits of the final (only) word for small `n`.
    fn tail_mask(num_vars: usize) -> u64 {
        if num_vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << num_vars)) - 1
        }
    }

    /// Creates the constant-zero function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`MAX_VARS`].
    pub fn zero(num_vars: usize) -> Self {
        assert!(
            num_vars <= MAX_VARS,
            "truth table limited to {MAX_VARS} variables, got {num_vars}"
        );
        TruthTable {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        }
    }

    /// Creates the constant-one function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds [`MAX_VARS`].
    pub fn one(num_vars: usize) -> Self {
        let mut t = Self::zero(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_tail();
        t
    }

    /// Creates the projection function `x_index` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_vars` or `num_vars > MAX_VARS`.
    pub fn var(num_vars: usize, index: usize) -> Self {
        assert!(
            index < num_vars,
            "variable index {index} out of range for {num_vars} variables"
        );
        let mut t = Self::zero(num_vars);
        if index < 6 {
            for w in &mut t.words {
                *w = VAR_MASKS[index];
            }
        } else {
            let period = 1usize << (index - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / period) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.mask_tail();
        t
    }

    /// Builds a table from the low bits of `bits` (assignment `i` maps to bit
    /// `i`). Bits beyond `2^num_vars` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6` (use [`TruthTable::from_words`] instead).
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6, "from_bits only supports up to 6 variables");
        let mut t = Self::zero(num_vars);
        t.words[0] = bits;
        t.mask_tail();
        t
    }

    /// Builds a table from raw words (LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match the required word count.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert!(num_vars <= MAX_VARS);
        assert_eq!(
            words.len(),
            Self::word_count(num_vars),
            "wrong number of words for {num_vars} variables"
        );
        let mut t = TruthTable { num_vars, words };
        t.mask_tail();
        t
    }

    /// Zeroes all storage bits beyond `2^num_vars`.
    fn mask_tail(&mut self) {
        if self.num_vars < 6 {
            self.words[0] &= Self::tail_mask(self.num_vars);
        }
    }

    /// The number of variables of this table.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The underlying words (LSB-first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The number of bits (input assignments) of this table.
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// Returns the function value under the assignment encoded in `index`
    /// (bit `v` of `index` is the value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.num_bits(), "assignment index out of range");
        (self.words[index >> 6] >> (index & 63)) & 1 == 1
    }

    /// Sets the function value under assignment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.num_bits(), "assignment index out of range");
        let w = &mut self.words[index >> 6];
        if value {
            *w |= 1 << (index & 63);
        } else {
            *w &= !(1 << (index & 63));
        }
    }

    /// Whether this is the constant-zero function.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether this is the constant-one function.
    pub fn is_one(&self) -> bool {
        if self.num_vars >= 6 {
            self.words.iter().all(|&w| w == u64::MAX)
        } else {
            self.words[0] == Self::tail_mask(self.num_vars)
        }
    }

    /// Number of satisfying assignments (the ON-set size).
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// The positive cofactor with respect to variable `var` (same variable
    /// count; the cofactored variable becomes redundant).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut out = self.clone();
        if var < 6 {
            let mask = VAR_MASKS[var];
            let shift = 1 << var;
            for w in &mut out.words {
                let hi = *w & mask;
                *w = hi | (hi >> shift);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..period {
                    out.words[i + j] = self.words[i + period + j];
                }
                for j in 0..period {
                    out.words[i + period + j] = self.words[i + period + j];
                }
                i += 2 * period;
            }
        }
        out.mask_tail();
        out
    }

    /// The negative cofactor with respect to variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut out = self.clone();
        if var < 6 {
            let mask = !VAR_MASKS[var];
            let shift = 1 << var;
            for w in &mut out.words {
                let lo = *w & mask;
                *w = lo | (lo << shift);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..period {
                    out.words[i + period + j] = self.words[i + j];
                }
                i += 2 * period;
            }
        }
        out.mask_tail();
        out
    }

    /// Whether the function depends on variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function functionally depends on, ascending.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Existential quantification: `∃ var. f = f|var=0 ∨ f|var=1`.
    pub fn exists(&self, var: usize) -> Self {
        &self.cofactor0(var) | &self.cofactor1(var)
    }

    /// Universal quantification: `∀ var. f = f|var=0 ∧ f|var=1`.
    pub fn forall(&self, var: usize) -> Self {
        &self.cofactor0(var) & &self.cofactor1(var)
    }

    /// The Boolean difference `∂f/∂g = f ⊕ g` used by the paper's
    /// resubstitution framework (Section III-A).
    ///
    /// # Panics
    ///
    /// Panics if the two tables have different variable counts.
    pub fn boolean_difference(&self, other: &Self) -> Self {
        self ^ other
    }

    /// If-then-else composition `ite(self, t, e) = self·t + self'·e`.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn ite(&self, then_t: &Self, else_t: &Self) -> Self {
        &(self & then_t) | &(&!self & else_t)
    }

    /// Whether `self ⇒ other` (containment of ON-sets).
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn implies(&self, other: &Self) -> bool {
        assert_eq!(self.num_vars, other.num_vars);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Extends the table to `new_num_vars` variables (the added variables are
    /// don't-care / non-support).
    ///
    /// # Panics
    ///
    /// Panics if `new_num_vars < num_vars` or `new_num_vars > MAX_VARS`.
    pub fn extend_to(&self, new_num_vars: usize) -> Self {
        assert!(new_num_vars >= self.num_vars && new_num_vars <= MAX_VARS);
        if new_num_vars == self.num_vars {
            return self.clone();
        }
        let mut out = TruthTable::zero(new_num_vars);
        if self.num_vars < 6 {
            // Replicate the small table pattern to fill a full word.
            let span = 1usize << self.num_vars;
            let mut word = self.words[0];
            let mut filled = span;
            while filled < 64 {
                word |= word << filled;
                filled *= 2;
            }
            for w in &mut out.words {
                *w = word;
            }
        } else {
            let n = self.words.len();
            for (i, w) in out.words.iter_mut().enumerate() {
                *w = self.words[i % n];
            }
        }
        out.mask_tail();
        out
    }

    /// Composes by substituting each variable `v` of `self` with `inputs[v]`.
    /// All tables in `inputs` must share a variable count, which becomes the
    /// variable count of the result.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_vars`, `inputs` is empty while
    /// `num_vars > 0`, or input variable counts differ.
    pub fn compose(&self, inputs: &[TruthTable]) -> Self {
        assert_eq!(inputs.len(), self.num_vars, "wrong number of inputs");
        if self.num_vars == 0 {
            // Constant; caller must want a 0-var result.
            return self.clone();
        }
        let out_vars = inputs[0].num_vars;
        assert!(inputs.iter().all(|t| t.num_vars == out_vars));
        let mut result = TruthTable::zero(out_vars);
        // Shannon-expand over all minterms of self (fine for window sizes).
        for m in 0..self.num_bits() {
            if !self.bit(m) {
                continue;
            }
            let mut cube = TruthTable::one(out_vars);
            for (v, input) in inputs.iter().enumerate() {
                if (m >> v) & 1 == 1 {
                    cube = &cube & input;
                } else {
                    cube = &cube & &!input;
                }
            }
            result = &result | &cube;
        }
        result
    }

    /// Iterates over the indices of ON-set minterms.
    pub fn on_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_bits()).filter(move |&i| self.bit(i))
    }
}

impl Default for TruthTable {
    fn default() -> Self {
        TruthTable::zero(0)
    }
}

impl Hash for TruthTable {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num_vars.hash(state);
        self.words.hash(state);
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x", self.num_vars)?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.num_bits()).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(
                    self.num_vars, rhs.num_vars,
                    "truth table variable counts differ"
                );
                let words = self
                    .words
                    .iter()
                    .zip(&rhs.words)
                    .map(|(a, b)| a $op b)
                    .collect();
                TruthTable {
                    num_vars: self.num_vars,
                    words,
                }
            }
        }

        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut out = TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        !&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..=8 {
            let z = TruthTable::zero(n);
            let o = TruthTable::one(n);
            assert!(z.is_zero());
            assert!(o.is_one());
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert_eq!(!&z, o);
        }
    }

    #[test]
    fn projection_bits() {
        for n in 1..=9 {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for m in 0..(1usize << n) {
                    assert_eq!(t.bit(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn small_tables_mask_tail_bits() {
        let t = TruthTable::one(2);
        assert_eq!(t.words()[0], 0b1111);
        let v = TruthTable::var(3, 1);
        assert_eq!(v.words()[0] >> 8, 0);
    }

    #[test]
    fn de_morgan() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 3);
        assert_eq!(!&(&a & &b), &!&a | &!&b);
        assert_eq!(!&(&a | &b), &!&a & &!&b);
    }

    #[test]
    fn cofactor_small_var() {
        // f = x0 ? x1 : x2 over 3 vars
        let x0 = TruthTable::var(3, 0);
        let x1 = TruthTable::var(3, 1);
        let x2 = TruthTable::var(3, 2);
        let f = x0.ite(&x1, &x2);
        assert_eq!(f.cofactor1(0), x1);
        assert_eq!(f.cofactor0(0), x2);
    }

    #[test]
    fn cofactor_large_var() {
        // 8 variables so var 7 spans words.
        let x7 = TruthTable::var(8, 7);
        let x0 = TruthTable::var(8, 0);
        let f = &x7 ^ &x0;
        assert_eq!(f.cofactor1(7), !&x0);
        assert_eq!(f.cofactor0(7), x0);
    }

    #[test]
    fn shannon_expansion() {
        let x0 = TruthTable::var(5, 0);
        let x3 = TruthTable::var(5, 3);
        let x4 = TruthTable::var(5, 4);
        let f = &(&x0 & &x3) ^ &x4;
        for v in 0..5 {
            let xv = TruthTable::var(5, v);
            let expanded = xv.ite(&f.cofactor1(v), &f.cofactor0(v));
            assert_eq!(expanded, f, "Shannon expansion failed on var {v}");
        }
    }

    #[test]
    fn support_detects_redundancy() {
        let x1 = TruthTable::var(4, 1);
        let x2 = TruthTable::var(4, 2);
        let f = &(&x1 & &x2) | &(&x1 & &!&x2); // = x1
        assert_eq!(f.support(), vec![1]);
        assert_eq!(f, x1.extend_to(4));
    }

    #[test]
    fn quantification() {
        let x0 = TruthTable::var(3, 0);
        let x1 = TruthTable::var(3, 1);
        let f = &x0 & &x1;
        assert_eq!(f.exists(0), x1);
        assert!(f.forall(0).is_zero());
    }

    #[test]
    fn boolean_difference_is_xor() {
        let x0 = TruthTable::var(3, 0);
        let x1 = TruthTable::var(3, 1);
        let d = x0.boolean_difference(&x1);
        assert_eq!(d, &x0 ^ &x1);
        // f = d ^ g recovers f (paper, Section III-A).
        assert_eq!(&d ^ &x1, x0);
    }

    #[test]
    fn implies_checks_containment() {
        let x0 = TruthTable::var(2, 0);
        let x1 = TruthTable::var(2, 1);
        let and = &x0 & &x1;
        let or = &x0 | &x1;
        assert!(and.implies(&or));
        assert!(!or.implies(&and));
    }

    #[test]
    fn extend_preserves_function() {
        let x0 = TruthTable::var(2, 0);
        let x1 = TruthTable::var(2, 1);
        let f = &x0 ^ &x1;
        let g = f.extend_to(8);
        for m in 0..(1usize << 8) {
            assert_eq!(g.bit(m), f.bit(m & 3));
        }
    }

    #[test]
    fn compose_substitutes() {
        // f(a, b) = a & b, substitute a = x0 ^ x1, b = x2.
        let f = {
            let a = TruthTable::var(2, 0);
            let b = TruthTable::var(2, 1);
            &a & &b
        };
        let x0 = TruthTable::var(3, 0);
        let x1 = TruthTable::var(3, 1);
        let x2 = TruthTable::var(3, 2);
        let g = f.compose(&[&x0 ^ &x1, x2.clone()]);
        assert_eq!(g, &(&x0 ^ &x1) & &x2);
    }

    #[test]
    fn display_lsb_last() {
        let t = TruthTable::from_bits(2, 0b0110);
        assert_eq!(t.to_string(), "0110");
    }

    #[test]
    #[should_panic(expected = "variable counts differ")]
    fn mismatched_ops_panic() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(3, 0);
        let _ = &a & &b;
    }
}
