//! Word-level helpers over packed pattern vectors.
//!
//! Bit-parallel signatures (one bit per simulated input pattern, 64
//! patterns per `u64`) are the cheap necessary-condition filter of the
//! SBM framework: "functional filtering" of resubstitution candidates
//! (paper, Section III-B). The helpers here are the inner word loops of
//! that filter, shared by the simulation-signature service and the
//! truth-table machinery so every consumer agrees on bit conventions.

/// True when `a` and `b` differ on any pattern selected by `mask`.
///
/// This is the core candidate-filter primitive: with `a` the candidate's
/// signature, `b` the target's, and `mask` a care-set sample, a `true`
/// result proves the candidate disagrees with the target on a pattern
/// where the target is observable — so it can be rejected without any
/// BDD or SAT reasoning. A `false` result proves nothing (the sample may
/// simply miss the distinguishing minterm).
///
/// # Panics
///
/// Panics if the three slices have different lengths.
pub fn differs_under_mask(a: &[u64], b: &[u64], mask: &[u64]) -> bool {
    assert_eq!(a.len(), b.len(), "signature length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    a.iter()
        .zip(b)
        .zip(mask)
        .any(|((&wa, &wb), &wm)| (wa ^ wb) & wm != 0)
}

/// Number of set pattern bits across `words`.
pub fn count_ones(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Packs a slice of per-pattern booleans into `u64` words, little-endian
/// within each word (pattern `i` is bit `i % 64` of word `i / 64`). The
/// tail of the last word is zero-padded.
pub fn pack_bits(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differs_only_where_masked() {
        let a = [0b1010u64, 0];
        let b = [0b1000u64, 0];
        assert!(differs_under_mask(&a, &b, &[0b0010, 0]));
        assert!(!differs_under_mask(&a, &b, &[0b1101, u64::MAX]));
        assert!(!differs_under_mask(&a, &a, &[u64::MAX, u64::MAX]));
    }

    #[test]
    fn count_ones_sums_words() {
        assert_eq!(count_ones(&[0b101, u64::MAX]), 2 + 64);
        assert_eq!(count_ones(&[]), 0);
    }

    #[test]
    fn pack_bits_round_trips() {
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let words = pack_bits(&bits);
        assert_eq!(words.len(), 2);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!((words[i / 64] >> (i % 64)) & 1 == 1, bit, "bit {i}");
        }
        // Zero padding past the end.
        assert_eq!(words[1] >> 6, 0);
    }
}
