//! The baseline and SBM-enhanced implementation flows.
//!
//! Mirrors the paper's Table III methodology: the same implementation
//! backend (mapping + STA + power) runs on logic optimized by a baseline
//! script and by the baseline **plus the SBM framework**; results are
//! reported relative to baseline. The timing target is derived from the
//! baseline's critical path so that both flows face the same (slightly
//! aggressive) clock, producing non-trivial WNS/TNS.

use sbm_aig::Aig;
use sbm_core::gradient::GradientOptions;
use sbm_core::pipeline::PipelineReport;
use sbm_core::script::{resyn2rs, sbm_script_report, sbm_script_resumable, SbmOptions};
use sbm_metrics::Timer;

use crate::mapping::map_to_cells;
use crate::power::dynamic_power;
use crate::sta::analyze;

/// Which flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Algebraic/baseline optimization only.
    Baseline,
    /// Baseline plus the SBM framework (the "proposed flow").
    Proposed,
}

/// Implementation results of one flow on one design.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Combinational cell area.
    pub area: f64,
    /// No-clock dynamic power.
    pub dyn_power: f64,
    /// Critical-path delay.
    pub critical_path: f64,
    /// Optimization + implementation runtime in seconds.
    pub runtime: f64,
    /// AND nodes after logic optimization.
    pub aig_nodes: usize,
}

/// Timing metrics of a flow at a specific clock target.
#[derive(Debug, Clone, Copy)]
pub struct TimingMetrics {
    /// Worst negative slack.
    pub wns: f64,
    /// Total negative slack.
    pub tns: f64,
}

/// Everything produced by one flow run: the metrics plus the mapped
/// netlist (needed to evaluate timing at a shared clock afterwards).
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Implementation metrics.
    pub result: FlowResult,
    /// The mapped standard-cell netlist.
    pub netlist: crate::mapping::Netlist,
    /// Parallel-pipeline observability of the optimization step
    /// (all-zero for the baseline flow or serial runs).
    pub pipeline: PipelineReport,
}

/// Runs one flow (logic optimization + mapping + power) on a design.
/// Timing is reported separately via [`timing_at`], because WNS/TNS need
/// a clock target shared across flows.
pub fn run_flow(aig: &Aig, kind: FlowKind) -> FlowRun {
    run_flow_threaded(aig, kind, 1)
}

/// Crash-safety configuration for the proposed flow's optimization step:
/// checkpoints land in a per-design subdirectory of `root`, and `resume`
/// continues from an existing checkpoint instead of starting fresh.
#[derive(Debug, Clone)]
pub struct FlowCheckpoint {
    /// Root directory; each design checkpoints under `root/<name>`.
    pub root: std::path::PathBuf,
    /// Resume from the design's existing checkpoint. A design whose
    /// checkpoint is missing or unusable is re-run fresh and the typed
    /// error reported on stderr.
    pub resume: bool,
}

impl FlowCheckpoint {
    fn dir_for(&self, name: &str) -> std::path::PathBuf {
        self.root.join(name)
    }
}

/// [`run_flow`] with the proposed flow's window-based optimization steps
/// fanned out over `num_threads` workers.
pub fn run_flow_threaded(aig: &Aig, kind: FlowKind, num_threads: usize) -> FlowRun {
    run_flow_configured(aig, kind, num_threads, None, true)
}

/// [`run_flow_threaded`] with optional crash-safe checkpointing of the
/// proposed flow's optimization (`checkpoint` = directory for this
/// design, plus whether to resume from it) and control over the
/// simulation-signature candidate filter (`sim_filter`; see
/// `SbmOptions::sim_filter` for what toggling it changes).
pub fn run_flow_configured(
    aig: &Aig,
    kind: FlowKind,
    num_threads: usize,
    checkpoint: Option<(&std::path::Path, bool)>,
    sim_filter: bool,
) -> FlowRun {
    let timer = Timer::start();
    let (optimized, pipeline) = match kind {
        FlowKind::Baseline => (resyn2rs(aig), PipelineReport::default()),
        FlowKind::Proposed => {
            let opts = SbmOptions {
                iterations: 1,
                gradient: GradientOptions {
                    budget: 60,
                    ..Default::default()
                },
                num_threads,
                sim_filter,
                checkpoint_dir: checkpoint.map(|(dir, _)| dir.to_path_buf()),
                ..Default::default()
            };
            let run = match checkpoint {
                Some((dir, true)) => match sbm_script_resumable(aig, &opts) {
                    Ok(run) => run,
                    Err(e) => {
                        eprintln!("cannot resume from {} ({e}); running fresh", dir.display());
                        sbm_script_report(aig, &opts)
                    }
                },
                _ => sbm_script_report(aig, &opts),
            };
            (run.aig, run.stats)
        }
    };
    let netlist = map_to_cells(&optimized);
    let area = netlist.area();
    let dyn_power = dynamic_power(&netlist, 8, 0x0D15_EA5E);
    let timing = analyze(&netlist, f64::MAX);
    let runtime = timer.stop().as_secs_f64();
    FlowRun {
        result: FlowResult {
            area,
            dyn_power,
            critical_path: timing.critical_path,
            runtime,
            aig_nodes: optimized.num_ands(),
        },
        netlist,
        pipeline,
    }
}

/// WNS/TNS of a mapped netlist at a clock target.
pub fn timing_at(netlist: &crate::mapping::Netlist, clock: f64) -> TimingMetrics {
    let report = analyze(netlist, clock);
    TimingMetrics {
        wns: report.wns,
        tns: report.tns,
    }
}

/// One row of the Table III comparison for a single design.
#[derive(Debug, Clone)]
pub struct DesignComparison {
    /// Design name.
    pub name: String,
    /// Baseline results.
    pub baseline: FlowResult,
    /// Proposed-flow results.
    pub proposed: FlowResult,
    /// Baseline timing at the shared clock.
    pub baseline_timing: TimingMetrics,
    /// Proposed timing at the shared clock.
    pub proposed_timing: TimingMetrics,
    /// Parallel-pipeline observability of the proposed flow's
    /// optimization (all-zero for serial runs).
    pub pipeline: PipelineReport,
}

/// Runs both flows on a design and compares them at a shared clock set to
/// `clock_fraction` of the baseline critical path (< 1.0 makes the clock
/// aggressive, so both flows show negative slack, as post-P&R tables do).
pub fn compare_flows(name: &str, aig: &Aig, clock_fraction: f64) -> DesignComparison {
    compare_flows_threaded(name, aig, clock_fraction, 1)
}

/// [`compare_flows`] with the proposed flow running `num_threads` workers.
pub fn compare_flows_threaded(
    name: &str,
    aig: &Aig,
    clock_fraction: f64,
    num_threads: usize,
) -> DesignComparison {
    compare_flows_checkpointed(name, aig, clock_fraction, num_threads, None, true)
}

/// [`compare_flows_threaded`] with optional crash-safe checkpointing of
/// the proposed flow (see [`FlowCheckpoint`]) and control over the
/// simulation-signature candidate filter.
pub fn compare_flows_checkpointed(
    name: &str,
    aig: &Aig,
    clock_fraction: f64,
    num_threads: usize,
    checkpoint: Option<&FlowCheckpoint>,
    sim_filter: bool,
) -> DesignComparison {
    let baseline = run_flow(aig, FlowKind::Baseline);
    let ck_dir = checkpoint.map(|c| (c.dir_for(name), c.resume));
    let proposed = run_flow_configured(
        aig,
        FlowKind::Proposed,
        num_threads,
        ck_dir.as_ref().map(|(d, r)| (d.as_path(), *r)),
        sim_filter,
    );
    let clock = baseline.result.critical_path * clock_fraction;
    DesignComparison {
        name: name.to_string(),
        baseline_timing: timing_at(&baseline.netlist, clock),
        proposed_timing: timing_at(&proposed.netlist, clock),
        baseline: baseline.result,
        proposed: proposed.result,
        pipeline: proposed.pipeline,
    }
}

/// Aggregated Table III deltas over a set of design comparisons, in
/// percent relative to baseline (negative = improvement, like the paper).
#[derive(Debug, Clone, Copy)]
pub struct Table3Summary {
    /// Δ combinational area, %.
    pub area_pct: f64,
    /// Δ no-clock dynamic power, %.
    pub power_pct: f64,
    /// Δ WNS, % (negative = less negative slack).
    pub wns_pct: f64,
    /// Δ TNS, %.
    pub tns_pct: f64,
    /// Δ runtime, % (positive = proposed flow is slower).
    pub runtime_pct: f64,
}

/// Averages the relative deltas, mirroring the paper's "average results
/// w.r.t. a baseline flow" presentation.
pub fn summarize(rows: &[DesignComparison]) -> Table3Summary {
    let pct = |get_b: &dyn Fn(&DesignComparison) -> f64,
               get_p: &dyn Fn(&DesignComparison) -> f64|
     -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for r in rows {
            let b = get_b(r);
            let p = get_p(r);
            if b.abs() > 1e-12 {
                total += (p - b) / b.abs() * 100.0;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    };
    Table3Summary {
        area_pct: pct(&|r| r.baseline.area, &|r| r.proposed.area),
        power_pct: pct(&|r| r.baseline.dyn_power, &|r| r.proposed.dyn_power),
        // WNS/TNS are negative quantities; (p−b)/|b| < 0 means the
        // proposed flow reduced the violation, matching the paper's sign.
        wns_pct: pct(&|r| r.baseline_timing.wns, &|r| r.proposed_timing.wns),
        tns_pct: pct(&|r| r.baseline_timing.tns, &|r| r.proposed_timing.tns),
        runtime_pct: pct(&|r| r.baseline.runtime, &|r| r.proposed.runtime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::industrial_designs;

    #[test]
    fn proposed_flow_never_larger() {
        let designs = industrial_designs(2);
        for d in &designs {
            let cmp = compare_flows(&d.name, &d.aig, 0.85);
            assert!(
                cmp.proposed.aig_nodes <= cmp.baseline.aig_nodes,
                "{}: {} vs {}",
                d.name,
                cmp.proposed.aig_nodes,
                cmp.baseline.aig_nodes
            );
            assert!(cmp.baseline.area > 0.0);
            assert!(cmp.proposed.area > 0.0);
        }
    }

    #[test]
    fn flows_preserve_function() {
        let designs = industrial_designs(1);
        let d = &designs[0];
        let base = run_flow(&d.aig, FlowKind::Baseline).netlist;
        // The mapped baseline netlist must agree with the source AIG on
        // random vectors.
        let mut state = 11u64;
        for _ in 0..32 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let assignment: Vec<bool> = (0..d.aig.num_inputs())
                .map(|i| (state >> (i % 64)) & 1 == 1)
                .collect();
            assert_eq!(base.eval(&assignment), d.aig.eval(&assignment));
        }
        // The full SAT-based proof is exercised in the integration tests.
    }

    #[test]
    fn summary_computes_percentages() {
        let designs = industrial_designs(2);
        let rows: Vec<DesignComparison> = designs
            .iter()
            .map(|d| compare_flows(&d.name, &d.aig, 0.85))
            .collect();
        let summary = summarize(&rows);
        assert!(summary.area_pct <= 0.0, "area must not regress on average");
    }
}
