//! Switching-activity-based dynamic power estimation.
//!
//! Dynamic power is proportional to `Σ_nets activity(net) × load(net)`;
//! activity is estimated from bit-parallel random simulation of the
//! mapped netlist (toggle probability `2·p·(1−p)` per cycle for signal
//! probability `p`). The clock network is excluded — Table III's metric
//! is explicitly "dynamic power of the circuit without considering the
//! clock".

use crate::mapping::{Netlist, SignalRef};
use crate::sta::signal_loads;

/// Deterministic xorshift64* generator.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F491_4F6CDD1D)
}

/// Estimates no-clock dynamic power in normalized units.
///
/// `words` controls simulation depth (64 random patterns per word).
pub fn dynamic_power(netlist: &Netlist, words: usize, seed: u64) -> f64 {
    let mut state = seed | 1;
    // Bit-parallel netlist simulation.
    let mut input_sigs: Vec<Vec<u64>> = Vec::with_capacity(netlist.num_inputs());
    for _ in 0..netlist.num_inputs() {
        input_sigs.push((0..words).map(|_| xorshift(&mut state)).collect());
    }
    let mut gate_sigs: Vec<Vec<u64>> = Vec::with_capacity(netlist.num_gates());
    let get = |gate_sigs: &Vec<Vec<u64>>, s: SignalRef, w: usize| -> u64 {
        match s {
            SignalRef::Const(false) => 0,
            SignalRef::Const(true) => u64::MAX,
            SignalRef::Input(i) => input_sigs[i][w],
            SignalRef::Gate(g) => gate_sigs[g][w],
        }
    };
    for gate in netlist.gates() {
        let mut sig = Vec::with_capacity(words);
        for w in 0..words {
            let a = get(&gate_sigs, gate.inputs[0], w);
            let b = gate.inputs.get(1).map(|&s| get(&gate_sigs, s, w));
            sig.push(match (gate.cell.name, b) {
                ("INV", None) => !a,
                ("AND2", Some(b)) => a & b,
                ("NAND2", Some(b)) => !(a & b),
                ("OR2", Some(b)) => a | b,
                ("NOR2", Some(b)) => !(a | b),
                ("XOR2", Some(b)) => a ^ b,
                ("XNOR2", Some(b)) => !(a ^ b),
                // sbm-lint: allow(A003) the cell library is a closed compile-time set; an unknown shape is a library-definition bug
                other => panic!("unknown cell shape {other:?}"),
            });
        }
        gate_sigs.push(sig);
    }

    // Hash-map iteration order varies between map instances and float
    // addition is order-sensitive, so fix a deterministic summation order.
    let mut loads: Vec<(SignalRef, f64)> = signal_loads(netlist).into_iter().collect();
    loads.sort_by_key(|&(s, _)| s);
    let total_bits = (words * 64) as f64;
    let mut power = 0.0;
    for &(s, load) in &loads {
        let ones: u64 = (0..words)
            .map(|w| get(&gate_sigs, s, w).count_ones() as u64)
            .sum();
        let p = ones as f64 / total_bits;
        let activity = 2.0 * p * (1.0 - p);
        power += activity * load;
    }
    power
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_to_cells;
    use sbm_aig::Aig;

    #[test]
    fn more_logic_more_power() {
        let mut small = Aig::new();
        let a = small.add_input();
        let b = small.add_input();
        let f = small.and(a, b);
        small.add_output(f);
        let mut big = Aig::new();
        let inputs: Vec<_> = (0..8).map(|_| big.add_input()).collect();
        let f = big.xor_many(&inputs);
        big.add_output(f);
        let p_small = dynamic_power(&map_to_cells(&small), 8, 1);
        let p_big = dynamic_power(&map_to_cells(&big), 8, 1);
        assert!(p_big > p_small);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let n = map_to_cells(&aig);
        assert_eq!(dynamic_power(&n, 4, 7), dynamic_power(&n, 4, 7));
    }

    #[test]
    fn constant_logic_draws_nothing() {
        let mut aig = Aig::new();
        let _unused = aig.add_input();
        aig.add_output(sbm_aig::Lit::TRUE);
        let n = map_to_cells(&aig);
        assert_eq!(dynamic_power(&n, 4, 3), 0.0);
    }
}
