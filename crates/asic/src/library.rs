//! A small standard-cell library with area/delay/capacitance models.
//!
//! Areas are in equivalent NAND2 units, delays in normalized gate delays,
//! capacitances in unit input loads — the customary normalization when
//! absolute technology numbers cannot be published.

/// A combinational standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Cell name.
    pub name: &'static str,
    /// Area in NAND2 equivalents.
    pub area: f64,
    /// Intrinsic delay (input-to-output) in normalized gate delays.
    pub delay: f64,
    /// Delay added per unit of output load.
    pub load_factor: f64,
    /// Input capacitance per pin, in unit loads.
    pub input_cap: f64,
}

/// Inverter.
pub const INV: Cell = Cell {
    name: "INV",
    area: 0.67,
    delay: 0.5,
    load_factor: 0.25,
    input_cap: 1.0,
};

/// Two-input NAND (the area unit).
pub const NAND2: Cell = Cell {
    name: "NAND2",
    area: 1.0,
    delay: 1.0,
    load_factor: 0.35,
    input_cap: 1.0,
};

/// Two-input AND.
pub const AND2: Cell = Cell {
    name: "AND2",
    area: 1.33,
    delay: 1.4,
    load_factor: 0.35,
    input_cap: 1.0,
};

/// Two-input NOR.
pub const NOR2: Cell = Cell {
    name: "NOR2",
    area: 1.0,
    delay: 1.2,
    load_factor: 0.45,
    input_cap: 1.1,
};

/// Two-input OR.
pub const OR2: Cell = Cell {
    name: "OR2",
    area: 1.33,
    delay: 1.5,
    load_factor: 0.45,
    input_cap: 1.1,
};

/// Two-input XOR — more area/delay than AND/OR, which is exactly why the
/// paper's `xor_cost` knob exists (Section III-C).
pub const XOR2: Cell = Cell {
    name: "XOR2",
    area: 2.33,
    delay: 1.9,
    load_factor: 0.5,
    input_cap: 1.6,
};

/// Two-input XNOR.
pub const XNOR2: Cell = Cell {
    name: "XNOR2",
    area: 2.33,
    delay: 1.9,
    load_factor: 0.5,
    input_cap: 1.6,
};

/// Wire-load model: extra delay per fanout branch (a crude stand-in for
/// post-route RC, sufficient for *relative* flow comparisons).
pub const WIRE_DELAY_PER_FANOUT: f64 = 0.08;

/// Wire capacitance per fanout branch, in unit loads.
pub const WIRE_CAP_PER_FANOUT: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Sanity-checking library constants is the point of this test.
    #[allow(clippy::assertions_on_constants)]
    fn xor_costs_more_than_and() {
        assert!(XOR2.area > AND2.area);
        assert!(XOR2.delay > AND2.delay);
    }

    #[test]
    fn nand_is_area_unit() {
        assert_eq!(NAND2.area, 1.0);
    }
}
