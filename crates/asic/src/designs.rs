//! Synthetic "industrial-like" designs.
//!
//! The paper's Table III averages over 33 state-of-the-art ASICs that are
//! under NDA. As the substitute (documented in `DESIGN.md`), this module
//! composes deterministic designs out of the same ingredients real SoC
//! blocks are made of — arithmetic datapaths, control logic, arbitration,
//! priority/decode logic and parity trees — with per-design seeds so the
//! 33 designs differ in mix and size.

use sbm_aig::{Aig, Lit};
use sbm_epfl::words;

/// A named synthetic design.
#[derive(Debug)]
pub struct Design {
    /// Design name (`design01` …).
    pub name: String,
    /// The flattened combinational netlist.
    pub aig: Aig,
}

/// Deterministic xorshift64*.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F491_4F6CDD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

/// Appends a random-control block (AND/OR-dominated DAG) over `inputs`.
fn control_block(aig: &mut Aig, rng: &mut Rng, inputs: &[Lit], ops: usize) -> Vec<Lit> {
    let mut signals: Vec<Lit> = inputs.to_vec();
    for _ in 0..ops {
        let n = signals.len();
        let a = signals[(rng.next() as usize) % n].complement_if(rng.next() & 1 == 1);
        let b = signals[(rng.next() as usize) % n].complement_if(rng.next() & 1 == 1);
        let s = match rng.next() % 5 {
            0 | 1 => aig.and(a, b),
            2 | 3 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        signals.push(s);
    }
    signals.split_off(signals.len().saturating_sub(ops / 8 + 1))
}

/// Builds one design from its seed.
fn build_design(index: usize) -> Design {
    let mut rng = Rng(0xA51C_0000 + index as u64 * 0x9E37_79B9);
    let mut aig = Aig::new();
    let mut outputs: Vec<Lit> = Vec::new();

    // Datapath block: adder and/or multiplier slices.
    let dp_width = rng.range(8, 20);
    let a = words::input_word(&mut aig, dp_width);
    let b = words::input_word(&mut aig, dp_width);
    let (sum, carry) = words::add(&mut aig, &a, &b, Lit::FALSE);
    outputs.extend(sum.iter().copied());
    outputs.push(carry);
    if rng.next() & 1 == 1 {
        let mw = rng.range(4, 8);
        let product = words::multiply(&mut aig, &a[..mw], &b[..mw]);
        outputs.extend(product);
    }

    // Comparator / max logic.
    let lt = words::less_than(&mut aig, &a, &b);
    let eq = words::equal(&mut aig, &a, &b);
    outputs.push(lt);
    outputs.push(eq);

    // Arbitration block.
    let arb_n = rng.range(8, 24);
    let req = words::input_word(&mut aig, arb_n);
    let mut seen = Lit::FALSE;
    for &r in &req {
        let g = aig.and(r, !seen);
        seen = aig.or(seen, r);
        outputs.push(g);
    }

    // Parity / CRC-style tree.
    let par_n = rng.range(8, 32);
    let data = words::input_word(&mut aig, par_n);
    outputs.push(aig.xor_many(&data));

    // Control block over a mix of existing signals.
    let ctrl_inputs: Vec<Lit> = {
        let extra = words::input_word(&mut aig, rng.range(6, 16));
        let mut v = extra;
        v.push(lt);
        v.push(eq);
        v.push(carry);
        v
    };
    let ctrl_ops = rng.range(100, 600);
    let ctrl_outs = control_block(&mut aig, &mut rng, &ctrl_inputs, ctrl_ops);
    outputs.extend(ctrl_outs);

    for o in outputs {
        aig.add_output(o);
    }
    Design {
        name: format!("design{:02}", index + 1),
        aig: aig.cleanup(),
    }
}

/// Generates the first `n` of the 33 synthetic industrial designs
/// (`n = 33` reproduces the paper's population).
pub fn industrial_designs(n: usize) -> Vec<Design> {
    (0..n).map(build_design).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_are_deterministic() {
        let a = industrial_designs(3);
        let b = industrial_designs(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.aig.num_ands(), y.aig.num_ands());
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn designs_differ_from_each_other() {
        let designs = industrial_designs(5);
        let sizes: Vec<usize> = designs.iter().map(|d| d.aig.num_ands()).collect();
        let mut unique = sizes.clone();
        unique.dedup();
        assert!(unique.len() > 1, "designs should vary in size: {sizes:?}");
    }

    #[test]
    fn thirty_three_designs_generate() {
        let designs = industrial_designs(33);
        assert_eq!(designs.len(), 33);
        for d in &designs {
            assert!(d.aig.num_ands() > 100, "{} too small", d.name);
            assert!(d.aig.num_outputs() > 0);
        }
    }
}
