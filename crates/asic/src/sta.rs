//! Static timing analysis over mapped netlists.
//!
//! A load-dependent gate-delay model with a fanout-based wire-load proxy:
//! `delay(g) = intrinsic + load_factor × (Σ sink input caps + wire cap)`.
//! Slacks are measured against a target clock period; the paper's
//! Table III metrics are **WNS** (worst negative slack) and **TNS** (total
//! negative slack over all endpoints).

use std::collections::HashMap;

use crate::library::{WIRE_CAP_PER_FANOUT, WIRE_DELAY_PER_FANOUT};
use crate::mapping::{Netlist, SignalRef};

/// A timing report.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time of each gate output.
    pub arrivals: Vec<f64>,
    /// Arrival time at each primary output.
    pub output_arrivals: Vec<f64>,
    /// The critical-path delay (max output arrival).
    pub critical_path: f64,
    /// Worst negative slack (0 when all endpoints meet the clock).
    pub wns: f64,
    /// Total negative slack over all endpoints (0 when timing is met).
    pub tns: f64,
}

/// Runs STA against `clock_period`.
pub fn analyze(netlist: &Netlist, clock_period: f64) -> TimingReport {
    let fanouts = netlist.fanouts();
    // Output load of each signal.
    let load = |s: SignalRef| -> f64 {
        match fanouts.get(&s) {
            None => 0.0,
            Some(sinks) => {
                let cap: f64 = sinks
                    .iter()
                    .map(|&g| {
                        if g == usize::MAX {
                            1.0 // output pad load
                        } else {
                            netlist.gates()[g].cell.input_cap
                        }
                    })
                    .sum();
                cap + WIRE_CAP_PER_FANOUT * sinks.len() as f64
            }
        }
    };

    let mut arrivals = vec![0.0f64; netlist.num_gates()];
    let arrival_of = |arrivals: &[f64], s: SignalRef| -> f64 {
        match s {
            SignalRef::Const(_) | SignalRef::Input(_) => 0.0,
            SignalRef::Gate(g) => arrivals[g],
        }
    };
    for (i, gate) in netlist.gates().iter().enumerate() {
        let input_arrival = gate
            .inputs
            .iter()
            .map(|&s| arrival_of(&arrivals, s))
            .fold(0.0, f64::max);
        let out = SignalRef::Gate(i);
        let sinks = fanouts.get(&out).map_or(0, Vec::len);
        arrivals[i] = input_arrival
            + gate.cell.delay
            + gate.cell.load_factor * load(out)
            + WIRE_DELAY_PER_FANOUT * sinks as f64;
    }

    let output_arrivals: Vec<f64> = netlist
        .outputs()
        .iter()
        .map(|&s| arrival_of(&arrivals, s))
        .collect();
    let critical_path = output_arrivals.iter().copied().fold(0.0, f64::max);
    let mut wns = 0.0f64;
    let mut tns = 0.0f64;
    for &a in &output_arrivals {
        let slack = clock_period - a;
        if slack < 0.0 {
            wns = wns.min(slack);
            tns += slack;
        }
    }
    TimingReport {
        arrivals,
        output_arrivals,
        critical_path,
        wns,
        tns,
    }
}

/// Per-signal capacitive loads (used by the power model).
pub fn signal_loads(netlist: &Netlist) -> HashMap<SignalRef, f64> {
    let fanouts = netlist.fanouts();
    let mut loads = HashMap::new();
    for (s, sinks) in fanouts {
        let cap: f64 = sinks
            .iter()
            .map(|&g| {
                if g == usize::MAX {
                    1.0
                } else {
                    netlist.gates()[g].cell.input_cap
                }
            })
            .sum();
        loads.insert(s, cap + WIRE_CAP_PER_FANOUT * sinks.len() as f64);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_to_cells;
    use sbm_aig::Aig;

    fn chain(n: usize) -> Netlist {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..n + 1).map(|_| aig.add_input()).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        map_to_cells(&aig)
    }

    #[test]
    fn longer_chains_are_slower() {
        let short = analyze(&chain(2), 100.0);
        let long = analyze(&chain(10), 100.0);
        assert!(long.critical_path > short.critical_path);
        assert_eq!(long.wns, 0.0);
        assert_eq!(long.tns, 0.0);
    }

    #[test]
    fn negative_slack_reported() {
        let netlist = chain(10);
        let relaxed = analyze(&netlist, 1_000.0);
        let tight = analyze(&netlist, relaxed.critical_path / 2.0);
        assert!(tight.wns < 0.0);
        assert!(tight.tns <= tight.wns);
    }

    #[test]
    fn fanout_increases_delay() {
        // One driver with many sinks vs one sink.
        let mut small = Aig::new();
        let a = small.add_input();
        let b = small.add_input();
        let ab = small.and(a, b);
        let f = small.and(ab, a);
        small.add_output(f);
        let mut big = Aig::new();
        let a = big.add_input();
        let b = big.add_input();
        let ab = big.and(a, b);
        let mut outs = Vec::new();
        for _ in 0..1 {
            outs.push(ab);
        }
        let f = big.and(ab, a);
        big.add_output(f);
        for _ in 0..6 {
            big.add_output(ab); // heavy load on ab
        }
        let t_small = analyze(&map_to_cells(&small), 100.0);
        let t_big = analyze(&map_to_cells(&big), 100.0);
        assert!(t_big.critical_path > t_small.critical_path);
    }
}
