//! A simulated ASIC implementation flow.
//!
//! The paper's Table III reports post-place-&-route results of a
//! commercial EDA flow on 33 industrial ASICs under NDA. Neither the
//! designs nor the flow can be redistributed, so this crate builds the
//! closest measurable substitute (see `DESIGN.md`):
//!
//! * [`designs`] — 33 synthetic "industrial-like" designs mixing
//!   datapaths, control blocks, arbitration and coding logic;
//! * [`library`] — a small standard-cell library with area, delay and
//!   capacitance models;
//! * [`mapping`] — technology mapping of AIGs onto the library;
//! * [`sta`] — static timing analysis (arrival times, WNS/TNS against a
//!   target clock) with a fanout-based wire-load model;
//! * [`power`] — switching-activity-based dynamic power estimation;
//! * [`flow`] — the baseline flow and the SBM-enhanced flow, measuring
//!   the same relative quantities as Table III: combinational area,
//!   no-clock dynamic power, WNS, TNS and runtime.
//!
//! # Example
//!
//! ```no_run
//! use sbm_asic::flow::{run_flow, FlowKind};
//! use sbm_asic::designs;
//!
//! let designs = designs::industrial_designs(3); // 3 of the 33
//! let run = run_flow(&designs[0].aig, FlowKind::Baseline);
//! println!("area = {}", run.result.area);
//! ```

pub mod designs;
pub mod flow;
pub mod library;
pub mod mapping;
pub mod power;
pub mod sta;
