//! Technology mapping of AIGs onto the standard-cell library.
//!
//! A phase-aware structural mapper: XOR/XNOR patterns (the 3-AND
//! structure) are matched to `XOR2`/`XNOR2` cells, double-complemented
//! ANDs become `NOR2`, plain ANDs become `AND2`/`NAND2` depending on the
//! consumer phase, and inverters are inserted (and shared) where phases
//! cannot be absorbed.

use std::collections::HashMap;

use sbm_aig::{Aig, Lit, NodeId};

use crate::library::{Cell, AND2, INV, NOR2, XNOR2, XOR2};

/// A reference to a signal in the mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalRef {
    /// A constant driver.
    Const(bool),
    /// Primary input `i`.
    Input(usize),
    /// Output of gate `i`.
    Gate(usize),
}

/// A mapped gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The library cell.
    pub cell: Cell,
    /// Input signals, in pin order.
    pub inputs: Vec<SignalRef>,
}

/// A mapped standard-cell netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<SignalRef>,
}

impl Netlist {
    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The gate instances, topologically ordered (fanins first).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The primary-output signals.
    pub fn outputs(&self) -> &[SignalRef] {
        &self.outputs
    }

    /// Total combinational cell area — the paper's "Comb. Area" metric.
    pub fn area(&self) -> f64 {
        self.gates.iter().map(|g| g.cell.area).sum()
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Evaluates the netlist under an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs`.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.num_inputs);
        let mut values = vec![false; self.gates.len()];
        let get = |values: &[bool], s: SignalRef| match s {
            SignalRef::Const(b) => b,
            SignalRef::Input(i) => assignment[i],
            SignalRef::Gate(g) => values[g],
        };
        for (i, gate) in self.gates.iter().enumerate() {
            let a = get(&values, gate.inputs[0]);
            let b = gate.inputs.get(1).map(|&s| get(&values, s));
            values[i] = match (gate.cell.name, b) {
                ("INV", None) => !a,
                ("AND2", Some(b)) => a && b,
                ("NAND2", Some(b)) => !(a && b),
                ("OR2", Some(b)) => a || b,
                ("NOR2", Some(b)) => !(a || b),
                ("XOR2", Some(b)) => a ^ b,
                ("XNOR2", Some(b)) => !(a ^ b),
                // sbm-lint: allow(A003) the cell library is a closed compile-time set; an unknown shape is a library-definition bug
                other => panic!("unknown cell shape {other:?}"),
            };
        }
        self.outputs.iter().map(|&s| get(&values, s)).collect()
    }

    /// Per-signal sink lists: which gate pins and outputs each signal
    /// drives (gate index, or `usize::MAX` for a primary output).
    pub fn fanouts(&self) -> HashMap<SignalRef, Vec<usize>> {
        let mut map: HashMap<SignalRef, Vec<usize>> = HashMap::new();
        for (i, g) in self.gates.iter().enumerate() {
            for &s in &g.inputs {
                map.entry(s).or_default().push(i);
            }
        }
        for &o in &self.outputs {
            map.entry(o).or_default().push(usize::MAX);
        }
        map
    }
}

/// Maps an AIG onto the standard-cell library.
pub fn map_to_cells(aig: &Aig) -> Netlist {
    let aig = aig.cleanup();
    let fanout_counts = aig.fanout_counts();
    let mut gates: Vec<Gate> = Vec::new();
    // (node, phase) → netlist signal; phase true = complemented.
    let mut signals: HashMap<(NodeId, bool), SignalRef> = HashMap::new();
    signals.insert((NodeId::CONST, false), SignalRef::Const(false));
    signals.insert((NodeId::CONST, true), SignalRef::Const(true));
    for (i, &input) in aig.inputs().iter().enumerate() {
        signals.insert((input, false), SignalRef::Input(i));
    }

    // XOR detection: mark nodes that match the 3-AND exclusive-or shape
    // and whose internal nodes are single-fanout.
    let order = aig.topo_order();
    let mut xor_match: HashMap<NodeId, (Lit, Lit, bool)> = HashMap::new();
    let mut xor_internal: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for &id in &order {
        let (u, v) = aig.fanins(id);
        if !u.is_complemented() || !v.is_complemented() {
            continue;
        }
        let (un, vn) = (u.node(), v.node());
        if !aig.is_and(un) || !aig.is_and(vn) {
            continue;
        }
        if fanout_counts[un.index()] != 1 || fanout_counts[vn.index()] != 1 {
            continue;
        }
        let (a1, b1) = aig.fanins(un);
        let (a2, b2) = aig.fanins(vn);
        // n = !(a·b) · !(c·d) is XOR iff {c, d} = {!a, !b}.
        let is_xor = (a2 == !a1 && b2 == !b1) || (a2 == !b1 && b2 == !a1);
        if !is_xor {
            continue;
        }
        // Conflict checks (topological order commits inner matches
        // first): the internals must not already be consumed by another
        // match, and the XOR's operands must not reference consumed
        // nodes.
        if xor_internal.contains(&un)
            || xor_internal.contains(&vn)
            || xor_internal.contains(&a1.node())
            || xor_internal.contains(&b1.node())
        {
            continue;
        }
        // xor(a1, b1) with the phase parity folded in.
        let parity = a1.is_complemented() ^ b1.is_complemented();
        xor_match.insert(id, (a1.positive(), b1.positive(), parity));
        xor_internal.insert(un);
        xor_internal.insert(vn);
    }

    // Phase demand on each node, mirroring the emission loop below. An XOR
    // match whose output is consumed only complemented can flip the emitted
    // cell's parity (XOR2 <-> XNOR2) instead of paying an inverter.
    let mut pos_demand: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut neg_demand: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    {
        let mut note = |l: Lit| {
            if l.is_complemented() {
                neg_demand.insert(l.node());
            } else {
                pos_demand.insert(l.node());
            }
        };
        for &id in &order {
            if xor_internal.contains(&id) {
                continue;
            }
            if let Some(&(a, b, _)) = xor_match.get(&id) {
                note(a);
                note(b);
                continue;
            }
            let (a, b) = aig.fanins(id);
            if a.is_complemented() && b.is_complemented() {
                note(a.positive());
                note(b.positive());
            } else {
                note(a);
                note(b);
            }
        }
        for &l in &aig.outputs() {
            note(l);
        }
    }

    let get_signal = |_aig: &Aig,
                      gates: &mut Vec<Gate>,
                      signals: &mut HashMap<(NodeId, bool), SignalRef>,
                      lit: Lit|
     -> SignalRef {
        let key = (lit.node(), lit.is_complemented());
        if let Some(&s) = signals.get(&key) {
            return s;
        }
        // Only the complemented phase can be missing (positive phases are
        // inserted when the driver is emitted): add a shared inverter.
        let pos = signals[&(lit.node(), false)];
        let g = gates.len();
        gates.push(Gate {
            cell: INV,
            inputs: vec![pos],
        });
        let s = SignalRef::Gate(g);
        signals.insert(key, s);
        s
    };

    for &id in &order {
        if xor_internal.contains(&id) {
            // Consumed by an XOR2/XNOR2 match; never emitted standalone
            // (the single-fanout check guarantees no other reference).
            continue;
        }
        if let Some(&(a, b, parity)) = xor_match.get(&id) {
            let sa = get_signal(&aig, &mut gates, &mut signals, a);
            let sb = get_signal(&aig, &mut gates, &mut signals, b);
            // Emit the phase the consumers want: consumed only complemented
            // means the opposite-parity cell, with no inverter.
            let flip = neg_demand.contains(&id) && !pos_demand.contains(&id);
            let cell = if parity ^ flip { XNOR2 } else { XOR2 };
            let g = gates.len();
            gates.push(Gate {
                cell,
                inputs: vec![sa, sb],
            });
            signals.insert((id, flip), SignalRef::Gate(g));
            continue;
        }
        let (a, b) = aig.fanins(id);
        // Skip XOR-internal nodes until referenced (they never are when
        // matched); emit generic gates otherwise.
        if a.is_complemented() && b.is_complemented() {
            // !x · !y = NOR(x, y).
            let sa = get_signal(&aig, &mut gates, &mut signals, a.positive());
            let sb = get_signal(&aig, &mut gates, &mut signals, b.positive());
            let g = gates.len();
            gates.push(Gate {
                cell: NOR2,
                inputs: vec![sa, sb],
            });
            signals.insert((id, false), SignalRef::Gate(g));
        } else {
            let sa = get_signal(&aig, &mut gates, &mut signals, a);
            let sb = get_signal(&aig, &mut gates, &mut signals, b);
            let g = gates.len();
            gates.push(Gate {
                cell: AND2,
                inputs: vec![sa, sb],
            });
            signals.insert((id, false), SignalRef::Gate(g));
        }
    }

    let outputs: Vec<SignalRef> = aig
        .outputs()
        .iter()
        .map(|&l| get_signal(&aig, &mut gates, &mut signals, l))
        .collect();

    // Drop gates that drive nothing (XOR-internal ANDs were never
    // emitted, but inverters created for matching may be dead).
    prune(Netlist {
        num_inputs: aig.num_inputs(),
        gates,
        outputs,
    })
}

/// Removes unreferenced gates, renumbering.
fn prune(netlist: Netlist) -> Netlist {
    let mut live = vec![false; netlist.gates.len()];
    let mut stack: Vec<usize> = netlist
        .outputs
        .iter()
        .filter_map(|&s| match s {
            SignalRef::Gate(g) => Some(g),
            _ => None,
        })
        .collect();
    while let Some(g) = stack.pop() {
        if live[g] {
            continue;
        }
        live[g] = true;
        for &s in &netlist.gates[g].inputs {
            if let SignalRef::Gate(f) = s {
                stack.push(f);
            }
        }
    }
    let mut remap = vec![usize::MAX; netlist.gates.len()];
    let mut gates = Vec::new();
    for (i, gate) in netlist.gates.iter().enumerate() {
        if live[i] {
            remap[i] = gates.len();
            let inputs = gate
                .inputs
                .iter()
                .map(|&s| match s {
                    SignalRef::Gate(g) => SignalRef::Gate(remap[g]),
                    other => other,
                })
                .collect();
            gates.push(Gate {
                cell: gate.cell,
                inputs,
            });
        }
    }
    let outputs = netlist
        .outputs
        .iter()
        .map(|&s| match s {
            SignalRef::Gate(g) => SignalRef::Gate(remap[g]),
            other => other,
        })
        .collect();
    Netlist {
        num_inputs: netlist.num_inputs,
        gates,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(aig: &Aig, netlist: &Netlist) {
        let n = aig.num_inputs();
        assert!(n <= 12);
        for m in 0..(1usize << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                netlist.eval(&assignment),
                aig.eval(&assignment),
                "pattern {m}"
            );
        }
    }

    #[test]
    fn maps_xor_to_xor_cell() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        aig.add_output(x);
        let netlist = map_to_cells(&aig);
        assert!(netlist.gates().iter().any(|g| g.cell.name == "XOR2"));
        assert_eq!(netlist.num_gates(), 1, "{:?}", netlist.gates());
        check_equiv(&aig, &netlist);
    }

    #[test]
    fn maps_nor_shape() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.nor(a, b);
        aig.add_output(f);
        let netlist = map_to_cells(&aig);
        assert!(netlist.gates().iter().any(|g| g.cell.name == "NOR2"));
        check_equiv(&aig, &netlist);
    }

    #[test]
    fn inverters_are_shared() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        // !ab used twice: only one INV should be emitted.
        let f = aig.and(!ab, c);
        aig.add_output(f);
        aig.add_output(!ab);
        let netlist = map_to_cells(&aig);
        let inv_count = netlist
            .gates()
            .iter()
            .filter(|g| g.cell.name == "INV")
            .count();
        assert_eq!(inv_count, 1);
        check_equiv(&aig, &netlist);
    }

    #[test]
    fn random_networks_map_correctly() {
        let mut seed = 0xFACEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let mut aig = Aig::new();
            let mut signals: Vec<Lit> = (0..5).map(|_| aig.add_input()).collect();
            for _ in 0..30 {
                let r = next();
                let i = (r as usize >> 8) % signals.len();
                let j = (r as usize >> 24) % signals.len();
                let x = signals[i].complement_if(r & 1 == 1);
                let y = signals[j].complement_if(r & 2 == 2);
                let s = match (r >> 2) % 3 {
                    0 => aig.and(x, y),
                    1 => aig.or(x, y),
                    _ => aig.xor(x, y),
                };
                signals.push(s);
            }
            aig.add_output(*signals.last().expect("nonempty"));
            aig.add_output(signals[signals.len() / 2]);
            let aig = aig.cleanup();
            let netlist = map_to_cells(&aig);
            check_equiv(&aig, &netlist);
        }
    }

    #[test]
    fn area_counts_cells() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let netlist = map_to_cells(&aig);
        assert!(netlist.area() > 0.0);
        assert_eq!(netlist.num_gates(), 1);
    }
}
