//! A priority-cut k-LUT technology mapper.
//!
//! The EPFL synthesis competition tracks best results *mapped into LUT-6*;
//! the paper maps its optimized AIGs with ABC's `if -K 6 -a` (area-oriented
//! mapping, Section V-B). This crate reimplements that mapping style:
//! k-feasible priority cuts, a delay-oriented first pass, and area-flow /
//! exact-local-area recovery passes, followed by cover derivation.
//!
//! # Example
//!
//! ```
//! use sbm_aig::Aig;
//! use sbm_lutmap::{map_luts, MapOptions};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let f = aig.maj3(a, b, c);
//! aig.add_output(f);
//! let mapped = map_luts(&aig, &MapOptions::default());
//! // Majority-of-3 fits one LUT-6.
//! assert_eq!(mapped.num_luts(), 1);
//! assert_eq!(mapped.depth(), 1);
//! ```

use std::collections::HashMap;

use sbm_aig::cut::Cut;
use sbm_aig::sim::{lit_truth_table, window_truth_tables};
use sbm_aig::{Aig, NodeId};
use sbm_tt::TruthTable;

/// Options for LUT mapping.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// LUT input count (the paper's experiments use 6).
    pub k: usize,
    /// Priority cuts kept per node.
    pub max_cuts: usize,
    /// Area-recovery passes after the delay-oriented pass.
    pub area_rounds: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            k: 6,
            max_cuts: 8,
            area_rounds: 3,
        }
    }
}

/// One mapped LUT: a root node, its cut leaves and the LUT function over
/// those leaves (leaf `i` = table variable `i`).
#[derive(Debug, Clone)]
pub struct Lut {
    /// The AIG node this LUT implements.
    pub root: NodeId,
    /// Cut leaves (AIG inputs or other LUT roots).
    pub inputs: Vec<NodeId>,
    /// The LUT function.
    pub table: TruthTable,
}

/// A mapped LUT network.
#[derive(Debug, Clone)]
pub struct LutNetwork {
    luts: Vec<Lut>,
    /// Output references: (node, complemented). The node is an input node,
    /// the constant node, or the root of a LUT.
    outputs: Vec<(NodeId, bool)>,
    input_nodes: Vec<NodeId>,
}

impl LutNetwork {
    /// Number of LUTs — the paper's *LUT-6 count* (Table I).
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// The mapped LUTs in topological order.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// LUT network depth — the paper's *level count* (Table I).
    pub fn depth(&self) -> u32 {
        let mut level: HashMap<NodeId, u32> = HashMap::new();
        for lut in &self.luts {
            let l = 1 + lut
                .inputs
                .iter()
                .map(|n| level.get(n).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            level.insert(lut.root, l);
        }
        self.outputs
            .iter()
            .map(|(n, _)| level.get(n).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the LUT network under an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the source AIG's input
    /// count.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.input_nodes.len());
        let mut values: HashMap<NodeId, bool> = HashMap::new();
        values.insert(NodeId::CONST, false);
        for (i, &n) in self.input_nodes.iter().enumerate() {
            values.insert(n, assignment[i]);
        }
        for lut in &self.luts {
            let mut index = 0usize;
            for (i, n) in lut.inputs.iter().enumerate() {
                if values[n] {
                    index |= 1 << i;
                }
            }
            values.insert(lut.root, lut.table.bit(index));
        }
        self.outputs
            .iter()
            .map(|&(n, neg)| values[&n] ^ neg)
            .collect()
    }
}

/// A cut together with its mapping costs.
#[derive(Debug, Clone)]
struct RankedCut {
    cut: Cut,
    depth: u32,
    area_flow: f64,
}

/// Per-node mapping state: the kept priority cuts (best first).
#[derive(Debug, Clone)]
struct NodeState {
    cuts: Vec<RankedCut>,
}

impl NodeState {
    fn best(&self) -> &RankedCut {
        &self.cuts[0]
    }
}

/// Maps `aig` onto k-input LUTs, area-oriented.
///
/// This is the iterative priority-cuts algorithm: each pass re-enumerates
/// cuts bottom-up, ranking them by the pass's cost function (delay first,
/// then area flow with depth as tie-breaker, mirroring `if -a`) and keeping
/// only the `max_cuts` best per node. The final cover is derived from the
/// outputs.
pub fn map_luts(aig: &Aig, options: &MapOptions) -> LutNetwork {
    let order = aig.topo_order();
    let fanout_counts = aig.fanout_counts();
    let mut state: HashMap<NodeId, NodeState> = HashMap::new();

    // Pass 0: delay-oriented; passes 1..: area-flow-oriented.
    for pass in 0..=options.area_rounds {
        let mut next: HashMap<NodeId, NodeState> = HashMap::new();
        for &id in &order {
            let (fa, fb) = aig.fanins(id);
            // Candidate cuts: merges of the fanins' kept cuts (their trivial
            // cut included), which yields everything from {fa, fb} up to the
            // largest k-feasible union.
            let cuts_of = |n: NodeId, next: &HashMap<NodeId, NodeState>| -> Vec<Cut> {
                let mut v = vec![Cut::trivial(n)];
                if let Some(s) = next.get(&n) {
                    v.extend(s.cuts.iter().map(|rc| rc.cut.clone()));
                }
                v
            };
            let ca = cuts_of(fa.node(), &next);
            let cb = cuts_of(fb.node(), &next);
            let mut merged: Vec<Cut> = Vec::new();
            for x in &ca {
                for y in &cb {
                    if let Some(c) = x.merge(y, options.k) {
                        if !merged.iter().any(|m| m.dominates(&c)) {
                            merged.retain(|m| !c.dominates(m));
                            merged.push(c);
                        }
                    }
                }
            }
            // Rank by the pass cost function.
            let leaf_depth = |n: &NodeId, next: &HashMap<NodeId, NodeState>| {
                next.get(n).map_or(0, |s| s.best().depth)
            };
            let leaf_af = |n: &NodeId, next: &HashMap<NodeId, NodeState>| {
                next.get(n).map_or(0.0, |s| s.best().area_flow)
            };
            let refs = fanout_counts[id.index()].max(1) as f64;
            let mut ranked: Vec<RankedCut> = merged
                .into_iter()
                .map(|cut| {
                    let depth = 1 + cut
                        .leaves()
                        .iter()
                        .map(|n| leaf_depth(n, &next))
                        .max()
                        .unwrap_or(0);
                    let af =
                        (1.0 + cut.leaves().iter().map(|n| leaf_af(n, &next)).sum::<f64>()) / refs;
                    RankedCut {
                        cut,
                        depth,
                        area_flow: af,
                    }
                })
                .collect();
            if pass == 0 {
                ranked.sort_by(|a, b| {
                    a.depth
                        .cmp(&b.depth)
                        .then(a.area_flow.total_cmp(&b.area_flow))
                        .then(a.cut.size().cmp(&b.cut.size()))
                });
            } else {
                ranked.sort_by(|a, b| {
                    a.area_flow
                        .total_cmp(&b.area_flow)
                        .then(a.depth.cmp(&b.depth))
                        .then(b.cut.size().cmp(&a.cut.size()))
                });
            }
            ranked.truncate(options.max_cuts);
            next.insert(id, NodeState { cuts: ranked });
        }
        state = next;
    }

    // Cover derivation from the outputs.
    let mut needed: Vec<NodeId> = aig
        .outputs()
        .iter()
        .map(|l| l.node())
        .filter(|&n| aig.is_and(n))
        .collect();
    let mut mapped: HashMap<NodeId, Lut> = HashMap::new();
    while let Some(id) = needed.pop() {
        if mapped.contains_key(&id) {
            continue;
        }
        let cut = state[&id].best().cut.clone();
        let tables = window_truth_tables(aig, &[id], cut.leaves());
        let Some(table) = lit_truth_table(&tables, sbm_aig::Lit::new(id, false)) else {
            unreachable!("a best cut's leaves always form a valid window around its root");
        };
        mapped.insert(
            id,
            Lut {
                root: id,
                inputs: cut.leaves().to_vec(),
                table,
            },
        );
        for &leaf in cut.leaves() {
            if aig.is_and(leaf) {
                needed.push(leaf);
            }
        }
    }

    // Topologically order the chosen LUTs (by AIG topological position).
    let topo_pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut luts: Vec<Lut> = mapped.into_values().collect();
    luts.sort_by_key(|l| topo_pos[&l.root]);

    LutNetwork {
        luts,
        outputs: aig
            .outputs()
            .iter()
            .map(|l| (l.node(), l.is_complemented()))
            .collect(),
        input_nodes: aig.inputs().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lut_for_small_cone() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let f = aig.and_many(&inputs);
        aig.add_output(f);
        let mapped = map_luts(&aig, &MapOptions::default());
        assert_eq!(mapped.num_luts(), 1);
        assert_eq!(mapped.depth(), 1);
    }

    #[test]
    fn wide_and_needs_multiple_luts() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..12).map(|_| aig.add_input()).collect();
        let f = aig.and_many(&inputs);
        aig.add_output(f);
        let mapped = map_luts(&aig, &MapOptions::default());
        assert!(mapped.num_luts() >= 2 && mapped.num_luts() <= 3);
        assert_eq!(mapped.depth(), 2);
    }

    #[test]
    fn mapping_preserves_function() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let x = aig.xor(a, b);
        let m = aig.maj3(x, c, d);
        let f = aig.mux(a, m, x);
        aig.add_output(f);
        aig.add_output(!m);
        let mapped = map_luts(&aig, &MapOptions::default());
        for i in 0..16 {
            let assignment: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!(
                mapped.eval(&assignment),
                aig.eval(&assignment),
                "pattern {i}"
            );
        }
    }

    #[test]
    fn lut_input_limit_respected() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..10).map(|_| aig.add_input()).collect();
        let f = aig.xor_many(&inputs);
        aig.add_output(f);
        for k in [2usize, 4, 6] {
            let mapped = map_luts(
                &aig,
                &MapOptions {
                    k,
                    ..Default::default()
                },
            );
            for lut in mapped.luts() {
                assert!(lut.inputs.len() <= k);
            }
            for i in [0usize, 5, 513, 1023] {
                let assignment: Vec<bool> = (0..10).map(|v| (i >> v) & 1 == 1).collect();
                assert_eq!(mapped.eval(&assignment), aig.eval(&assignment));
            }
        }
    }

    #[test]
    fn constant_and_input_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.add_output(a);
        aig.add_output(!a);
        aig.add_output(sbm_aig::Lit::TRUE);
        let mapped = map_luts(&aig, &MapOptions::default());
        assert_eq!(mapped.num_luts(), 0);
        assert_eq!(mapped.eval(&[true]), vec![true, false, true]);
        assert_eq!(mapped.eval(&[false]), vec![false, true, true]);
    }

    #[test]
    fn area_recovery_no_worse_than_delay_only() {
        // A reconvergent structure where area recovery can share a cut.
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..8).map(|_| aig.add_input()).collect();
        let x = aig.xor_many(&inputs[0..4]);
        let y = aig.xor_many(&inputs[4..8]);
        let f = aig.and(x, y);
        let g = aig.or(x, y);
        aig.add_output(f);
        aig.add_output(g);
        let with_recovery = map_luts(&aig, &MapOptions::default());
        let without = map_luts(
            &aig,
            &MapOptions {
                area_rounds: 0,
                ..Default::default()
            },
        );
        assert!(with_recovery.num_luts() <= without.num_luts());
    }
}
