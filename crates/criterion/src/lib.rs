//! Offline drop-in shim for [criterion](https://crates.io/crates/criterion).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the minimal benchmark-harness surface its `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical analysis and plots, each benchmark runs a short
//! warmup followed by `sample_size` timed samples and prints
//! mean / min / max per-iteration wall-clock time to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warmup sample to populate caches and allocators.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return self;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:.2?}/iter (min {min:.2?}, max {max:.2?}, {} samples)",
            self.name,
            samples.len()
        );
        self
    }

    pub fn finish(self) {}
}

/// Runs the closure under timing; handed to `bench_function` callbacks.
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundles benchmark functions into a single runner function named after
/// the first argument.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.finish();
        // One warmup + three samples.
        assert_eq!(runs, 4);
    }
}
