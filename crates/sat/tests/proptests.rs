// Test code: a panic IS the failure report (clippy.toml only relaxes
// unwrap/expect inside #[test] fns, not test-file helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Property tests: the SAT solver must agree with brute force on small
//! formulas, and the AIG bindings must preserve network function.

use proptest::prelude::*;
use sbm_sat::{
    equiv::{EquivalenceOracle, MiterOracle, Verdict},
    redundancy::{remove_redundancies, RedundancyOptions},
    sweep::{sweep, SweepOptions},
    SatLit, SolveResult, Solver, Var,
};

/// Random CNF over `n` vars: up to `m` clauses of 1..=3 literals.
fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (2usize..=6).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=3);
        proptest::collection::vec(clause, 1..=12).prop_map(move |cs| (n, cs))
    })
}

fn brute_force_sat(n: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    (0..1usize << n).any(|m| {
        clauses
            .iter()
            .all(|c| c.iter().any(|&(v, neg)| ((m >> v) & 1 == 1) != neg))
    })
}

/// Random AIG recipe, mirroring the one in the aig crate's tests.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, bool, bool)>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (2usize..=5, 1usize..=20).prop_flat_map(|(num_inputs, num_steps)| {
        let step = (
            0u8..3,
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        );
        proptest::collection::vec(step, num_steps).prop_map(move |raw| {
            let steps = raw
                .iter()
                .enumerate()
                .map(|(i, &(op, a, b, na, nb))| {
                    let pool = num_inputs + i;
                    (op, a as usize % pool, b as usize % pool, na, nb)
                })
                .collect();
            Recipe { num_inputs, steps }
        })
    })
}

fn build(recipe: &Recipe) -> sbm_aig::Aig {
    let mut aig = sbm_aig::Aig::new();
    let mut signals: Vec<sbm_aig::Lit> = (0..recipe.num_inputs).map(|_| aig.add_input()).collect();
    for &(op, a, b, na, nb) in &recipe.steps {
        let x = signals[a].complement_if(na);
        let y = signals[b].complement_if(nb);
        let s = match op {
            0 => aig.and(x, y),
            1 => aig.or(x, y),
            _ => aig.xor(x, y),
        };
        signals.push(s);
    }
    let out = *signals.last().expect("at least one signal");
    aig.add_output(out);
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_agrees_with_brute_force((n, clauses) in arb_cnf()) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
        let mut consistent = true;
        for c in &clauses {
            let lits: Vec<SatLit> = c
                .iter()
                .map(|&(v, neg)| SatLit::new(vars[v], neg))
                .collect();
            consistent &= solver.add_clause(&lits);
        }
        let expected = brute_force_sat(n, &clauses);
        if !consistent {
            prop_assert!(!expected, "solver found root conflict on a SAT formula");
        } else {
            let result = solver.solve(&[]);
            prop_assert_eq!(
                result,
                if expected { SolveResult::Sat } else { SolveResult::Unsat }
            );
            if result == SolveResult::Sat {
                // Verify the model.
                for c in &clauses {
                    prop_assert!(c.iter().any(|&(v, neg)| solver.model_value(vars[v]) != neg));
                }
            }
        }
    }

    #[test]
    fn self_equivalence(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let clean = aig.cleanup();
        prop_assert_eq!(MiterOracle::new().check(&aig, &clean), Verdict::Equivalent);
    }

    #[test]
    fn sweep_preserves_function(recipe in arb_recipe()) {
        let mut aig = build(&recipe);
        let before = aig.cleanup();
        sweep(&mut aig, &SweepOptions::default());
        let after = aig.cleanup();
        prop_assert!(after.num_ands() <= before.num_ands());
        prop_assert_eq!(MiterOracle::new().check(&before, &after), Verdict::Equivalent);
    }

    #[test]
    fn redundancy_removal_preserves_function(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let opts = RedundancyOptions { max_checks: 200, ..Default::default() };
        let cleaned = remove_redundancies(&aig, &opts).aig;
        prop_assert!(cleaned.num_ands() <= aig.num_ands());
        prop_assert_eq!(MiterOracle::new().check(&aig, &cleaned), Verdict::Equivalent);
    }
}
