//! The CDCL solver core.

use std::fmt;

use sbm_budget::{Budget, BudgetError};

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign. Encoded as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(u32);

impl SatLit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Self {
        SatLit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Self {
        SatLit(v.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign.
    pub fn new(v: Var, negated: bool) -> Self {
        SatLit(v.0 << 1 | negated as u32)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negative.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Display for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found ([`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
    /// The wall-clock/cancellation [`Budget`] attached via
    /// [`Solver::set_budget`] tripped before a verdict.
    Interrupted,
}

const UNDEF: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<SatLit>,
    learnt: bool,
}

/// A conflict-driven clause-learning SAT solver.
///
/// Features: two watched literals, first-UIP conflict analysis, VSIDS-style
/// variable activities with exponential decay, phase saving, geometric
/// restarts and an optional conflict budget (so callers such as SAT
/// sweeping can bail out on hard instances, mirroring the resource bailouts
/// the paper applies to its BDD engines).
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // literal code -> clause indices watching it
    assign: Vec<u8>,        // var -> 0 false, 1 true, 2 undef
    phase: Vec<bool>,       // saved phases
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    ok: bool,
    conflict_budget: Option<u64>,
    budget: Budget,
    budget_tripped: Option<BudgetError>,
    conflicts: u64,
    /// Statistics: total decisions and propagations.
    pub num_decisions: u64,
    /// Statistics: total unit propagations.
    pub num_propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            ok: true,
            conflict_budget: None,
            budget: Budget::unlimited(),
            budget_tripped: None,
            conflicts: 0,
            num_decisions: 0,
            num_propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNDEF);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Limits the number of conflicts per [`Solver::solve`] call; `None`
    /// removes the limit. When the budget is exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Attaches a wall-clock/cancellation [`Budget`] probed from inside
    /// the propagation loop; once it trips, [`Solver::solve`] returns
    /// [`SolveResult::Interrupted`]. Pass [`Budget::unlimited`] to detach.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn value(&self, l: SatLit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNDEF {
            UNDEF
        } else {
            a ^ l.is_neg() as u8
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] outcome.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unassigned (no model available).
    pub fn model_value(&self, v: Var) -> bool {
        let a = self.assign[v.index()];
        assert!(a != UNDEF, "no model value for unassigned variable");
        a == 1
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (conflict at decision level 0).
    ///
    /// # Panics
    ///
    /// Panics if called while a solve is in progress (non-root decision
    /// level).
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause at non-root level");
        if !self.ok {
            return false;
        }
        // Simplify: drop duplicate/false literals; detect tautology.
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value(l) == 1 || simplified.contains(&!l) {
                return true; // already satisfied / tautological
            }
            if self.value(l) == 0 || simplified.contains(&l) {
                continue;
            }
            simplified.push(l);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<SatLit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(Clause { lits, learnt });
        idx
    }

    fn unchecked_enqueue(&mut self, l: SatLit, reason: Option<u32>) {
        debug_assert_eq!(self.value(l), UNDEF);
        let v = l.var().index();
        self.assign[v] = !l.is_neg() as u8;
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the index of a conflicting clause if any.
    ///
    /// Probes the attached [`Budget`] once per propagated literal; on a
    /// trip it records the reason in `budget_tripped` and returns early
    /// (no conflict) with `qhead` intact, so propagation stays resumable.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            if let Err(e) = self.budget.probe() {
                self.budget_tripped = Some(e);
                return None;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.num_propagations += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Make sure the false literal is in slot 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                if self.value(w0) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != 0 {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(w0) == 0 {
                    // Conflict: restore remaining watchers.
                    self.watches[false_lit.code()] = watchers;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.unchecked_enqueue(w0, Some(ci));
                i += 1;
            }
            self.watches[false_lit.code()] = watchers;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: u32) -> (Vec<SatLit>, u32) {
        let mut seen = vec![false; self.num_vars()];
        let mut learnt: Vec<SatLit> = vec![SatLit(0)]; // slot for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            let clause_lits = self.clauses[confl as usize].lits.clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &clause_lits[start..] {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal to expand on the trail.
            loop {
                index -= 1;
                if seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            let Some(reason) = self.reason[lit.var().index()] else {
                unreachable!("implied (non-decision) literal always has a reason clause");
            };
            confl = reason;
            p = Some(lit);
        }
        let Some(uip) = p else {
            unreachable!("conflict analysis always reaches a UIP");
        };
        learnt[0] = !uip;

        // Backtrack level: second-highest level in learnt clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn cancel_until(&mut self, level: u32) {
        // The loop conditions guarantee both pops succeed.
        while self.trail_lim.len() as u32 > level {
            let Some(lim) = self.trail_lim.pop() else {
                break;
            };
            while self.trail.len() > lim {
                let Some(l) = self.trail.pop() else { break };
                let v = l.var().index();
                self.assign[v] = UNDEF;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<SatLit> {
        let mut best: Option<Var> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNDEF
                && best.is_none_or(|b| self.activity[v] > self.activity[b.index()])
            {
                best = Some(Var(v as u32));
            }
        }
        best.map(|v| SatLit::new(v, !self.phase[v.index()]))
    }

    /// Solves under the given assumption literals.
    ///
    /// Returns [`SolveResult::Unknown`] only when a conflict budget is set
    /// and exhausted, and [`SolveResult::Interrupted`] only when a budget
    /// attached via [`Solver::set_budget`] trips. The solver can be reused
    /// afterwards (assumptions are retracted).
    ///
    /// Every call also records its counter deltas (conflicts, decisions,
    /// propagations, outcome) into the calling thread's
    /// [`SatTally`](crate::SatTally), so the work of short-lived solvers
    /// survives their drop — see [`crate::drain_sat_tally`].
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SolveResult {
        self.conflicts = 0;
        let decisions_before = self.num_decisions;
        let propagations_before = self.num_propagations;
        let result = self.solve_inner(assumptions);
        crate::tally::record_solve(
            result,
            self.conflicts,
            self.num_decisions - decisions_before,
            self.num_propagations - propagations_before,
        );
        result
    }

    fn solve_inner(&mut self, assumptions: &[SatLit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.budget_tripped = None;
        if self.budget.check().is_err() {
            return SolveResult::Interrupted;
        }
        let mut restart_limit = 128u64;
        let mut conflicts_since_restart = 0u64;
        let result = 'outer: loop {
            // (Re-)apply assumptions above the root level.
            self.cancel_until(0);
            for &a in assumptions {
                match self.value(a) {
                    1 => continue,
                    0 => break 'outer SolveResult::Unsat,
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(a, None);
                        if let Some(confl) = self.propagate() {
                            let _ = confl;
                            break 'outer SolveResult::Unsat;
                        }
                        if self.budget_tripped.take().is_some() {
                            break 'outer SolveResult::Interrupted;
                        }
                    }
                }
            }
            let assumption_level = self.trail_lim.len() as u32;
            loop {
                if let Some(confl) = self.propagate() {
                    self.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.trail_lim.len() as u32 <= assumption_level {
                        break 'outer SolveResult::Unsat;
                    }
                    let (learnt, bt) = self.analyze(confl);
                    self.cancel_until(bt.max(assumption_level));
                    if learnt.len() == 1 {
                        if self.trail_lim.len() as u32 > assumption_level {
                            self.cancel_until(assumption_level);
                        }
                        if self.value(learnt[0]) == 0 {
                            break 'outer SolveResult::Unsat;
                        }
                        if self.value(learnt[0]) == UNDEF {
                            self.unchecked_enqueue(learnt[0], None);
                        }
                    } else {
                        let ci = self.attach_clause(learnt.clone(), true);
                        self.unchecked_enqueue(learnt[0], Some(ci));
                    }
                    self.var_inc /= 0.95;
                    if let Some(budget) = self.conflict_budget {
                        if self.conflicts >= budget {
                            break 'outer SolveResult::Unknown;
                        }
                    }
                    if conflicts_since_restart >= restart_limit {
                        conflicts_since_restart = 0;
                        restart_limit = restart_limit + restart_limit / 2;
                        continue 'outer;
                    }
                } else if self.budget_tripped.take().is_some() {
                    break 'outer SolveResult::Interrupted;
                } else {
                    match self.pick_branch() {
                        None => break 'outer SolveResult::Sat,
                        Some(l) => {
                            self.num_decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(l, None);
                        }
                    }
                }
            }
        };
        if result != SolveResult::Sat {
            self.cancel_until(0);
        }
        result
    }

    /// Number of learnt clauses currently stored.
    pub fn num_learnts(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<SatLit> {
        (0..n).map(|_| SatLit::pos(solver.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert!(!s.add_clause(&[!v[0]]) || s.solve(&[]) == SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for l in &v {
            assert!(s.model_value(l.var()));
        }
    }

    #[test]
    // Index-based clause construction reads better than iterator chains.
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[SatLit(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = SatLit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_work_and_retract() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(&[!v[0], !v[1]]), SolveResult::Unsat);
        // Solver is reusable: without assumptions it is satisfiable.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[!v[0]]), SolveResult::Sat);
        assert!(s.model_value(v[1].var()));
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ^ x1 ^ x2 = 1 encoded with auxiliary clauses.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        // Odd parity: enumerate the 4 satisfying patterns as clauses over
        // the 4 falsifying ones (CNF of XOR).
        s.add_clause(&[v[0], v[1], v[2]]);
        s.add_clause(&[v[0], !v[1], !v[2]]);
        s.add_clause(&[!v[0], v[1], !v[2]]);
        s.add_clause(&[!v[0], !v[1], v[2]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let parity =
            s.model_value(v[0].var()) ^ s.model_value(v[1].var()) ^ s.model_value(v[2].var());
        assert!(parity);
    }

    #[test]
    // Index-based clause construction reads better than iterator chains.
    #[allow(clippy::needless_range_loop)]
    fn conflict_budget_returns_unknown() {
        // A hard pigeonhole instance with a tiny budget.
        let n = 6;
        let mut s = Solver::new();
        let mut p = vec![vec![SatLit(0); n - 1]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = SatLit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&row.clone());
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.set_conflict_budget(Some(3));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn cancelled_budget_interrupts_and_detaches() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        let budget = Budget::cancellable();
        s.set_budget(budget.clone());
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        budget.cancel();
        assert_eq!(s.solve(&[]), SolveResult::Interrupted);
        // Detaching the budget makes the solver usable again.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn expired_deadline_interrupts_solve() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.set_budget(Budget::with_deadline(std::time::Duration::ZERO));
        assert_eq!(s.solve(&[]), SolveResult::Interrupted);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0], !v[0]]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }
}
