//! Thread-local accumulation of solver counters.
//!
//! Most SAT work in the framework runs through short-lived solvers: the
//! miter-based equivalence gate builds a [`crate::Solver`], solves once
//! and drops it, discarding every counter the CDCL loop incremented.
//! This module keeps those counters alive: [`crate::Solver::solve`]
//! records each call's deltas into a thread-local [`SatTally`], and run
//! owners (the pipeline's window loop, the script runner) drain it with
//! [`drain_sat_tally`] at attribution boundaries.
//!
//! The accumulator is strictly thread-local, so per-window drains on
//! worker threads are race-free and deterministic across thread counts
//! — concurrent test runs or sibling workers can never pollute each
//! other's tallies.

use std::cell::Cell;

use crate::solver::SolveResult;

/// Aggregated counters across [`crate::Solver::solve`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatTally {
    /// `solve` calls.
    pub solves: u64,
    /// Calls that returned [`SolveResult::Sat`].
    pub sat: u64,
    /// Calls that returned [`SolveResult::Unsat`].
    pub unsat: u64,
    /// Calls that exhausted their conflict budget
    /// ([`SolveResult::Unknown`]).
    pub unknown: u64,
    /// Calls interrupted by a wall-clock budget
    /// ([`SolveResult::Interrupted`]).
    pub interrupted: u64,
    /// Conflicts.
    pub conflicts: u64,
    /// Decisions.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
}

impl SatTally {
    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: &SatTally) {
        self.solves += other.solves;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.interrupted += other.interrupted;
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
    }

    /// True when no solve has been recorded.
    pub fn is_zero(&self) -> bool {
        *self == SatTally::default()
    }
}

thread_local! {
    static TALLY: Cell<SatTally> = const { Cell::new(SatTally {
        solves: 0,
        sat: 0,
        unsat: 0,
        unknown: 0,
        interrupted: 0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
    }) };
}

/// Records one completed `solve` call (its per-call counter deltas) into
/// the calling thread's tally.
pub(crate) fn record_solve(result: SolveResult, conflicts: u64, decisions: u64, propagations: u64) {
    TALLY.with(|t| {
        let mut tally = t.get();
        tally.solves += 1;
        match result {
            SolveResult::Sat => tally.sat += 1,
            SolveResult::Unsat => tally.unsat += 1,
            SolveResult::Unknown => tally.unknown += 1,
            SolveResult::Interrupted => tally.interrupted += 1,
        }
        tally.conflicts += conflicts;
        tally.decisions += decisions;
        tally.propagations += propagations;
        t.set(tally);
    });
}

/// Takes the calling thread's accumulated tally, leaving it zeroed.
///
/// Drains are destructive by design: a counter can be attributed to
/// exactly one report, so nested measurement scopes (script step around
/// pipeline run around window) can never double-count.
pub fn drain_sat_tally() -> SatTally {
    TALLY.with(Cell::take)
}

/// Adds `tally` back into the calling thread's accumulator — used by
/// callers that collected a tally (e.g. from a discarded inner report)
/// and want it to flow to the surrounding measurement scope instead of
/// being lost.
pub fn note_sat_tally(tally: &SatTally) {
    TALLY.with(|t| {
        let mut cur = t.get();
        cur.merge(tally);
        t.set(cur);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatLit, Solver};

    #[test]
    fn solve_calls_accumulate_and_drain() {
        let _ = drain_sat_tally(); // isolate from any prior test body on this thread
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        solver.add_clause(&[SatLit::neg(a)]);
        assert_eq!(solver.solve(&[]), crate::SolveResult::Sat);
        assert_eq!(solver.solve(&[SatLit::neg(b)]), crate::SolveResult::Unsat);
        let tally = drain_sat_tally();
        assert_eq!(tally.solves, 2);
        assert_eq!(tally.sat, 1);
        assert_eq!(tally.unsat, 1);
        // Drained means drained.
        assert!(drain_sat_tally().is_zero());
    }

    #[test]
    fn note_restores_a_drained_tally() {
        let _ = drain_sat_tally();
        let outer = SatTally {
            solves: 3,
            unsat: 3,
            conflicts: 7,
            ..SatTally::default()
        };
        note_sat_tally(&outer);
        let mut expected = SatTally::default();
        expected.merge(&outer);
        assert_eq!(drain_sat_tally(), expected);
    }
}
