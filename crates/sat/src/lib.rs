//! A CDCL SAT solver and its AIG bindings.
//!
//! "SAT solvers have recently been used as Boolean method engine for don't
//! cares computation … More recently, a SAT-based redundancy removal
//! approach has been presented \[9\]" (paper, Section II-A). The SBM
//! resynthesis script runs "SAT-based sweeping and redundancy removal as in
//! \[9\]" as one of its steps (Section V-A); equivalence checking also
//! backs the verification of every optimization engine in this repository.
//!
//! Contents:
//!
//! * [`Solver`] — conflict-driven clause learning with two watched
//!   literals, VSIDS-style activities, phase saving and restarts;
//! * [`cnf`] — Tseitin encoding of AIGs;
//! * [`equiv`] — miter-based combinational equivalence checking;
//! * [`sweep`] — SAT sweeping (merge functionally equivalent nodes);
//! * [`redundancy`] — SAT-based redundancy removal.
//!
//! # Example
//!
//! ```
//! use sbm_sat::{Solver, SatLit, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
//! solver.add_clause(&[SatLit::neg(a)]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert!(solver.model_value(b));
//! ```

pub mod cnf;
pub mod equiv;
pub mod redundancy;
mod solver;
pub mod sweep;
mod tally;

pub use equiv::{EquivalenceOracle, MiterOracle, Verdict};
pub use solver::{SatLit, SolveResult, Solver, Var};
pub use sweep::{sweep, sweep_collect, SweepOptions, SweepOutcome, SweepStats};
pub use tally::{drain_sat_tally, note_sat_tally, SatTally};
