//! Miter-based combinational equivalence checking.
//!
//! Every SBM optimization engine in this repository is verified by checking
//! that the optimized network is combinationally equivalent to the original
//! — the paper's industrial flow does the same ("all benchmarks are
//! verified with an industrial formal equivalence checking flow", Section
//! V-C).
//!
//! The entry point is the [`EquivalenceOracle`] trait: an oracle maps a
//! pair of interface-compatible networks to a [`Verdict`], and a
//! [`Verdict::Refuted`] verdict carries the distinguishing input
//! assignment — the counterexample witness that simulation services
//! (`sbm-sim`) ingest to sharpen their filters. [`MiterOracle`] is the
//! SAT-backed implementation.

use sbm_aig::Aig;
use sbm_budget::Budget;

use crate::cnf::encode;
use crate::solver::{SatLit, SolveResult, Solver};

/// Outcome of an [`EquivalenceOracle`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The two networks compute identical functions.
    Equivalent,
    /// Provably inequivalent; the payload is the witness assignment (one
    /// value per primary input, in input order) on which they differ —
    /// exactly the counterexample pattern a simulation service replays.
    Refuted(Vec<bool>),
    /// The oracle's resource budget ran out before a decision.
    Unknown,
}

/// A decision procedure for combinational equivalence of two AIGs with
/// matching interfaces.
///
/// Implementations must be *sound* in both directions: `Equivalent` only
/// for truly equivalent networks, `Refuted` only with a genuine witness.
/// `Unknown` is always permitted.
pub trait EquivalenceOracle {
    /// Decides equivalence of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the two networks have different
    /// input or output counts.
    fn check(&self, a: &Aig, b: &Aig) -> Verdict;
}

/// The SAT-backed oracle: shared inputs, XOR per output pair, SAT on the
/// OR of the differences. Strong and complete within its budgets.
#[derive(Debug, Clone, Default)]
pub struct MiterOracle {
    conflict_budget: Option<u64>,
    budget: Option<Budget>,
}

impl MiterOracle {
    /// An oracle with unbounded conflicts and no wall-clock budget.
    pub fn new() -> Self {
        MiterOracle::default()
    }

    /// Bounds solver conflicts (`None` = unbounded); an exhausted budget
    /// yields [`Verdict::Unknown`].
    #[must_use]
    pub fn with_conflict_budget(mut self, conflicts: Option<u64>) -> Self {
        self.conflict_budget = conflicts;
        self
    }

    /// Probes a wall-clock / cancellation [`Budget`] from inside the
    /// solver's propagation loop; a tripped budget yields
    /// [`Verdict::Unknown`].
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }
}

impl EquivalenceOracle for MiterOracle {
    fn check(&self, a: &Aig, b: &Aig) -> Verdict {
        assert_eq!(a.num_inputs(), b.num_inputs(), "input count mismatch");
        assert_eq!(a.num_outputs(), b.num_outputs(), "output count mismatch");
        let mut solver = Solver::new();
        solver.set_conflict_budget(self.conflict_budget);
        if let Some(budget) = &self.budget {
            solver.set_budget(budget.clone());
        }
        let map_a = encode(a, &mut solver);
        let map_b = encode(b, &mut solver);
        // Tie the inputs together.
        for (&ia, &ib) in a.inputs().iter().zip(b.inputs()) {
            let la = SatLit::pos(map_a.var(ia));
            let lb = SatLit::pos(map_b.var(ib));
            solver.add_clause(&[!la, lb]);
            solver.add_clause(&[la, !lb]);
        }
        // XOR each output pair into a fresh variable; assert at least one
        // difference.
        let mut diffs = Vec::with_capacity(a.num_outputs());
        for (oa, ob) in a.outputs().into_iter().zip(b.outputs()) {
            let la = map_a.lit(oa);
            let lb = map_b.lit(ob);
            let d = SatLit::pos(solver.new_var());
            // d ↔ la ⊕ lb
            solver.add_clause(&[!d, la, lb]);
            solver.add_clause(&[!d, !la, !lb]);
            solver.add_clause(&[d, !la, lb]);
            solver.add_clause(&[d, la, !lb]);
            diffs.push(d);
        }
        solver.add_clause(&diffs);
        match solver.solve(&[]) {
            SolveResult::Unsat => Verdict::Equivalent,
            SolveResult::Unknown | SolveResult::Interrupted => Verdict::Unknown,
            SolveResult::Sat => {
                let cex = a
                    .inputs()
                    .iter()
                    .map(|&i| solver.model_value(map_a.var(i)))
                    .collect();
                Verdict::Refuted(cex)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_pair() -> (Aig, Aig) {
        let mut x = Aig::new();
        let a = x.add_input();
        let b = x.add_input();
        let f = x.xor(a, b);
        x.add_output(f);
        // Equivalent alternative: (a|b) & !(a&b)
        let mut y = Aig::new();
        let a = y.add_input();
        let b = y.add_input();
        let o = y.or(a, b);
        let n = y.and(a, b);
        let f = y.and(o, !n);
        y.add_output(f);
        (x, y)
    }

    #[test]
    fn equivalent_structures() {
        let (x, y) = xor_pair();
        assert_eq!(MiterOracle::new().check(&x, &y), Verdict::Equivalent);
    }

    #[test]
    fn inequivalent_yields_witness() {
        let mut x = Aig::new();
        let a = x.add_input();
        let b = x.add_input();
        let f = x.and(a, b);
        x.add_output(f);
        let mut y = Aig::new();
        let a2 = y.add_input();
        let b2 = y.add_input();
        let g = y.or(a2, b2);
        y.add_output(g);
        match MiterOracle::new().check(&x, &y) {
            Verdict::Refuted(cex) => {
                assert!(x.eval(&cex)[0] != y.eval(&cex)[0]);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn multi_output_equivalence() {
        let mut x = Aig::new();
        let a = x.add_input();
        let b = x.add_input();
        let c = x.add_input();
        let m = x.maj3(a, b, c);
        x.add_output(m);
        let q = x.xor(a, c);
        x.add_output(q);
        let mut y = Aig::new();
        let a2 = y.add_input();
        let b2 = y.add_input();
        let c2 = y.add_input();
        let m2 = y.maj3(c2, a2, b2);
        y.add_output(m2);
        let q2 = y.xor(c2, a2);
        y.add_output(q2);
        assert_eq!(MiterOracle::new().check(&x, &y), Verdict::Equivalent);
    }

    #[test]
    fn complemented_outputs_differ() {
        let (x, mut y) = xor_pair();
        let out = y.outputs()[0];
        y.set_output(0, !out);
        assert!(matches!(
            MiterOracle::new().check(&x, &y),
            Verdict::Refuted(_)
        ));
    }
}
