//! Tseitin encoding of AIGs into CNF.

use std::collections::HashMap;

use sbm_aig::{Aig, Lit, NodeId};

use crate::solver::{SatLit, Solver, Var};

/// The variable mapping produced when an AIG is loaded into a solver.
#[derive(Debug, Clone)]
pub struct CnfMap {
    vars: HashMap<NodeId, Var>,
}

impl CnfMap {
    /// The solver variable of an AIG node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not encoded (dead logic is skipped).
    pub fn var(&self, node: NodeId) -> Var {
        self.vars[&node]
    }

    /// The solver literal corresponding to an AIG literal.
    ///
    /// # Panics
    ///
    /// Panics if the node was not encoded.
    pub fn lit(&self, lit: Lit) -> SatLit {
        SatLit::new(self.var(lit.node()), lit.is_complemented())
    }

    /// Whether the node was encoded.
    pub fn contains(&self, node: NodeId) -> bool {
        self.vars.contains_key(&node)
    }
}

/// Encodes the live logic of `aig` into `solver` (Tseitin): one variable
/// per node, three clauses per AND gate. Returns the node→variable map.
///
/// The constant node is encoded as a variable forced to false, so constant
/// outputs and odd corner cases need no special-casing by callers.
pub fn encode(aig: &Aig, solver: &mut Solver) -> CnfMap {
    let mut vars: HashMap<NodeId, Var> = HashMap::new();
    let const_var = solver.new_var();
    solver.add_clause(&[SatLit::neg(const_var)]);
    vars.insert(NodeId::CONST, const_var);
    for &input in aig.inputs() {
        vars.insert(input, solver.new_var());
    }
    for id in aig.topo_order() {
        let (a, b) = aig.fanins(id);
        let v = solver.new_var();
        vars.insert(id, v);
        let la = SatLit::new(vars[&a.node()], a.is_complemented());
        let lb = SatLit::new(vars[&b.node()], b.is_complemented());
        let lv = SatLit::pos(v);
        // v ↔ la ∧ lb
        solver.add_clause(&[!lv, la]);
        solver.add_clause(&[!lv, lb]);
        solver.add_clause(&[lv, !la, !lb]);
    }
    CnfMap { vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn and_gate_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let mut solver = Solver::new();
        let map = encode(&aig, &mut solver);
        // f ∧ ¬a is unsatisfiable.
        assert_eq!(solver.solve(&[map.lit(f), map.lit(!a)]), SolveResult::Unsat);
        // f is satisfiable (with a = b = 1).
        assert_eq!(solver.solve(&[map.lit(f)]), SolveResult::Sat);
        assert!(solver.model_value(map.var(a.node())));
        assert!(solver.model_value(map.var(b.node())));
    }

    #[test]
    fn xor_gate_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let mut solver = Solver::new();
        let map = encode(&aig, &mut solver);
        assert_eq!(
            solver.solve(&[map.lit(f), map.lit(a), map.lit(b)]),
            SolveResult::Unsat
        );
        assert_eq!(
            solver.solve(&[map.lit(f), map.lit(a), map.lit(!b)]),
            SolveResult::Sat
        );
    }

    #[test]
    fn constant_is_false() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        aig.add_output(Lit::TRUE);
        let mut solver = Solver::new();
        let map = encode(&aig, &mut solver);
        assert_eq!(solver.solve(&[map.lit(Lit::TRUE)]), SolveResult::Sat);
        assert_eq!(solver.solve(&[map.lit(Lit::FALSE)]), SolveResult::Unsat);
    }
}
