//! SAT sweeping: merging functionally equivalent nodes.
//!
//! Candidate-equivalent node pairs are found by random simulation (nodes
//! with identical signatures, up to complement) and confirmed by SAT; a
//! confirmed pair is merged with [`sbm_aig::Aig::replace`]. This is the
//! "SAT-based sweeping" step of the paper's Boolean resynthesis script
//! (Section V-A).

use std::collections::HashMap;

use sbm_aig::sim::Signatures;
use sbm_aig::{Aig, Lit};

use crate::cnf::encode;
use crate::solver::{SolveResult, Solver};

/// Options for SAT sweeping.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Simulation words per node for candidate bucketing.
    pub sim_words: usize,
    /// RNG seed for the simulation patterns.
    pub seed: u64,
    /// Conflict budget per SAT call (`None` = unbounded).
    pub budget: Option<u64>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_words: 8,
            seed: 0x5EED_CAFE,
            budget: Some(2_000),
        }
    }
}

/// Statistics of a sweeping pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Node pairs confirmed equivalent and merged.
    pub merged: usize,
    /// SAT calls that proved inequivalence (simulation false positives).
    pub refuted: usize,
    /// SAT calls that ran out of budget.
    pub undecided: usize,
}

/// Result of [`sweep_collect`]: the pass statistics plus the refutation
/// witnesses harvested from SAT models.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Counters of the pass.
    pub stats: SweepStats,
    /// One input assignment (in primary-input order) per refuted candidate
    /// pair. Each witness distinguishes two nodes that random simulation
    /// could not tell apart — exactly the patterns worth feeding back into
    /// a simulation-signature service.
    pub witnesses: Vec<Vec<bool>>,
}

/// Runs one SAT-sweeping pass over `aig`, merging proven-equivalent nodes
/// into their earliest (topologically first) representative. Returns the
/// statistics; the AIG is modified in place (call
/// [`sbm_aig::Aig::cleanup`] afterwards to compact).
pub fn sweep(aig: &mut Aig, options: &SweepOptions) -> SweepStats {
    sweep_collect(aig, options).stats
}

/// Like [`sweep`], but also collects a counterexample witness for every
/// refuted candidate pair (the SAT model restricted to the primary
/// inputs).
pub fn sweep_collect(aig: &mut Aig, options: &SweepOptions) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    let sig = Signatures::random(aig, options.sim_words, options.seed);
    // Bucket nodes by canonical signature hash (positive phase hash of the
    // lexicographically smaller of sig / ~sig).
    let mut buckets: HashMap<u64, Vec<Lit>> = HashMap::new();
    let order = aig.topo_order();
    let mut solver = Solver::new();
    solver.set_conflict_budget(options.budget);
    let map = encode(aig, &mut solver);
    for id in order {
        let pos = Lit::new(id, false);
        // Canonicalize phase: use the phase whose first signature word has
        // bit 0 clear, so that f and ¬f land in the same bucket with known
        // relative phase.
        let canon = if sig.lit_word(pos, 0) & 1 == 1 {
            !pos
        } else {
            pos
        };
        let h = sig.hash(canon);
        let bucket = buckets.entry(h).or_default();
        let mut merged = false;
        for &rep in bucket.iter() {
            if !sig.maybe_equal(rep, canon) {
                continue;
            }
            // Representative may have been replaced by an earlier merge.
            let rep_now = aig.resolve(rep);
            if rep_now.node() == id {
                continue;
            }
            // SAT check: rep ⊕ canon is unsatisfiable?
            let lr = map.lit(rep);
            let lc = map.lit(canon);
            let sat_eq = {
                let r1 = solver.solve(&[lr, !lc]);
                if r1 == SolveResult::Unsat {
                    solver.solve(&[!lr, lc])
                } else {
                    r1 // Sat / Unknown / Interrupted: no second call needed
                }
            };
            match sat_eq {
                SolveResult::Unsat => {
                    // canon ≡ rep; replace node `id` with rep_now, fixing
                    // the phase so the positive literal of id maps right:
                    // canon = pos ^ c  ⇒ pos ≡ rep ^ c.
                    let c = canon.is_complemented();
                    if aig.replace(id, rep_now.complement_if(c)).is_ok() {
                        outcome.stats.merged += 1;
                        merged = true;
                    }
                    break;
                }
                SolveResult::Sat => {
                    outcome.stats.refuted += 1;
                    let witness = aig
                        .inputs()
                        .iter()
                        .map(|&input| solver.model_value(map.var(input)))
                        .collect();
                    outcome.witnesses.push(witness);
                }
                SolveResult::Unknown | SolveResult::Interrupted => {
                    outcome.stats.undecided += 1;
                }
            }
        }
        if !merged {
            bucket.push(canon);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{EquivalenceOracle, MiterOracle, Verdict};

    #[test]
    fn merges_functionally_equal_structures() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        // Two structurally different XORs.
        let x1 = aig.xor(a, b);
        let o = aig.or(a, b);
        let n = aig.nand(a, b);
        let x2 = aig.and(o, n);
        aig.add_output(x1);
        aig.add_output(x2);
        let before = aig.cleanup();
        assert!(before.num_ands() > 3);
        let stats = sweep(&mut aig, &SweepOptions::default());
        assert!(stats.merged >= 1, "{stats:?}");
        let after = aig.cleanup();
        assert_eq!(after.num_ands(), 3, "sweeping should share the XOR");
        assert_eq!(
            MiterOracle::new().check(&before, &after),
            Verdict::Equivalent
        );
    }

    #[test]
    fn merges_complemented_equivalences() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        let y = aig.xnor(a, b); // = !x, structurally distinct
        aig.add_output(x);
        aig.add_output(y);
        let before = aig.cleanup();
        sweep(&mut aig, &SweepOptions::default());
        let after = aig.cleanup();
        assert!(after.num_ands() <= before.num_ands());
        assert_eq!(
            MiterOracle::new().check(&before, &after),
            Verdict::Equivalent
        );
    }

    #[test]
    fn collect_harvests_one_witness_per_refutation() {
        // An AND chain of 16 inputs is all-zeros under 64 random patterns
        // with overwhelming probability (the all-ones minterm has weight
        // 2^-16), so its deep nodes collide with a structural constant
        // false in the signature buckets — SAT must refute each collision.
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..16).map(|_| aig.add_input()).collect();
        let mut f = inputs[0];
        for &i in &inputs[1..] {
            f = aig.and(f, i);
        }
        let z = aig.and(inputs[0], !inputs[0]); // constant false node
        aig.add_output(f);
        aig.add_output(z);
        let before = aig.cleanup();
        let options = SweepOptions {
            sim_words: 1,
            ..SweepOptions::default()
        };
        let outcome = sweep_collect(&mut aig, &options);
        assert!(outcome.stats.refuted >= 1, "{:?}", outcome.stats);
        assert_eq!(outcome.witnesses.len(), outcome.stats.refuted);
        for witness in &outcome.witnesses {
            assert_eq!(witness.len(), before.num_inputs());
        }
        let after = aig.cleanup();
        assert_eq!(
            MiterOracle::new().check(&before, &after),
            Verdict::Equivalent
        );
    }

    #[test]
    fn no_false_merges_on_distinct_functions() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.and(a, b);
        let g = aig.and(a, c);
        aig.add_output(f);
        aig.add_output(g);
        let before = aig.cleanup();
        let stats = sweep(&mut aig, &SweepOptions::default());
        assert_eq!(stats.merged, 0);
        let after = aig.cleanup();
        assert_eq!(
            MiterOracle::new().check(&before, &after),
            Verdict::Equivalent
        );
    }
}
