//! SAT-based redundancy removal.
//!
//! A fanin connection of an AND gate is *redundant* if replacing it by
//! constant 1 (i.e. replacing the gate by its other fanin) does not change
//! any primary output — the stuck-at-1 fault on that connection is
//! untestable. Following Debnath et al. \[9\] (cited by the paper and run
//! as part of its resynthesis script), we test candidate connections with
//! SAT and remove the proven-redundant ones.

use sbm_aig::sim::Signatures;
use sbm_aig::{Aig, Lit, NodeId};

use crate::equiv::{EquivalenceOracle, MiterOracle, Verdict};

/// Options for redundancy removal.
#[derive(Debug, Clone, Copy)]
pub struct RedundancyOptions {
    /// Conflict budget per SAT check.
    pub budget: Option<u64>,
    /// Maximum number of SAT checks per pass (runtime guard).
    pub max_checks: usize,
}

impl Default for RedundancyOptions {
    fn default() -> Self {
        RedundancyOptions {
            budget: Some(2_000),
            max_checks: 10_000,
        }
    }
}

/// Statistics of a redundancy-removal pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedundancyStats {
    /// Connections proven redundant and removed.
    pub removed: usize,
    /// SAT checks performed.
    pub checks: usize,
}

/// Builds a copy of `aig` in which node `target` is replaced by `with`.
fn rebuild_with_replacement(aig: &Aig, target: NodeId, with_other_fanin: Lit) -> Option<Aig> {
    let mut copy = aig.clone();
    copy.replace(target, with_other_fanin).ok()?;
    Some(copy.cleanup())
}

/// Result of a redundancy-removal pass.
#[derive(Debug, Clone)]
pub struct RedundancyResult {
    /// The cleaned network.
    pub aig: Aig,
    /// Pass statistics.
    pub stats: RedundancyStats,
}

/// Runs one redundancy-removal pass: for every AND gate, tests whether the
/// gate can be replaced by either of its fanins (stuck-at-1 on the other
/// connection). Proven-redundant gates are replaced. Returns the cleaned
/// network with the pass statistics.
pub fn remove_redundancies(aig: &Aig, options: &RedundancyOptions) -> RedundancyResult {
    let mut stats = RedundancyStats::default();
    let mut current = aig.cleanup();
    // Iterate to a fixpoint (each removal can expose more redundancy), but
    // bounded by the check budget.
    'outer: loop {
        // Simulation prefilter: a gate can only be replaced by one of its
        // fanins if they agree on all random patterns — this screens out
        // almost every candidate before any SAT work.
        let sig = Signatures::random(&current, 8, 0x5EED_0DD5);
        // Node ids are only valid for the network they came from; restart
        // the scan whenever `current` is rebuilt.
        for id in current.topo_order() {
            if !current.is_and(id) || current.is_replaced(id) {
                continue;
            }
            let (a, b) = current.fanins(id);
            for candidate in [a, b] {
                if !sig.maybe_equal(Lit::new(id, false), candidate) {
                    continue;
                }
                if stats.checks >= options.max_checks {
                    return RedundancyResult {
                        aig: current.cleanup(),
                        stats,
                    };
                }
                stats.checks += 1;
                let Some(replaced) = rebuild_with_replacement(&current, id, candidate) else {
                    continue;
                };
                if replaced.num_ands() >= current.num_ands() {
                    continue;
                }
                if MiterOracle::new()
                    .with_conflict_budget(options.budget)
                    .check(&current, &replaced)
                    == Verdict::Equivalent
                {
                    stats.removed += 1;
                    current = replaced;
                    continue 'outer;
                }
            }
        }
        // A full scan without a removal: fixpoint reached.
        break;
    }
    RedundancyResult {
        aig: current.cleanup(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_redundant_and() {
        // f = a & (a | b): the (a | b) connection is redundant; f = a.
        // Note strashing won't simplify this (different structure).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let o = aig.or(a, b);
        let f = aig.and(a, o);
        aig.add_output(f);
        assert_eq!(aig.num_ands(), 2);
        let RedundancyResult {
            aig: cleaned,
            stats,
        } = remove_redundancies(&aig, &RedundancyOptions::default());
        assert!(stats.removed >= 1, "{stats:?}");
        assert_eq!(cleaned.num_ands(), 0, "f should collapse to a");
        assert_eq!(
            MiterOracle::new().check(&aig, &cleaned),
            Verdict::Equivalent
        );
    }

    #[test]
    fn keeps_irredundant_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.maj3(a, b, c);
        aig.add_output(f);
        let before = aig.num_ands();
        let cleaned = remove_redundancies(&aig, &RedundancyOptions::default()).aig;
        assert_eq!(cleaned.num_ands(), before);
        assert_eq!(
            MiterOracle::new().check(&aig, &cleaned),
            Verdict::Equivalent
        );
    }

    #[test]
    fn respects_check_limit() {
        let mut aig = Aig::new();
        let inputs: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let f = aig.and_many(&inputs);
        aig.add_output(f);
        let opts = RedundancyOptions {
            budget: Some(100),
            max_checks: 1,
        };
        let stats = remove_redundancies(&aig, &opts).stats;
        assert!(stats.checks <= 1);
    }
}
