//! The serializable run-level report schema.
//!
//! A [`RunReport`] is the durable form of one benchmark-tool run: window
//! counters, per-engine statistics with latency histograms, phase
//! wall-clocks, the BDD/SAT counters harvested from recycled managers
//! and dropped solvers, fault/resume bookkeeping and free-form extras.
//! `BENCH_*.json` files written by `table1`/`table2`/`table3` (and by
//! `ci.sh`) are exactly [`RunReport::to_json`] output.
//!
//! # Stability
//!
//! The schema is versioned by [`SCHEMA_VERSION`]. Decoding is *strict
//! both ways*: a missing field, an unknown field, a type mismatch or a
//! version mismatch is a [`ReportError`], never a silently defaulted
//! value — so CI fails loudly on schema drift instead of producing
//! `BENCH_*.json` files that no longer mean what they used to. Widening
//! the schema requires bumping [`SCHEMA_VERSION`].

use std::fmt;

use crate::json::{parse, write_pretty, JsonError, JsonValue};
use crate::{CounterSet, Histogram, HISTOGRAM_BUCKETS};

/// Version stamped into (and required from) every serialized report.
/// v2 added the `sim_filter` block (simulation-signature candidate
/// filtering counters); v3 added the `server` block (job-server slice /
/// park / resume / recovery bookkeeping).
pub const SCHEMA_VERSION: u64 = 3;

/// Window-outcome counters of a run (each processed window lands in
/// exactly one of the outcome buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowReport {
    /// Windows produced by partitioning.
    pub total: u64,
    /// Windows skipped before any engine ran.
    pub skipped: u64,
    /// Windows the engine chain left unchanged.
    pub unchanged: u64,
    /// Windows rejected by the functional-equivalence gate.
    pub gate_rejected: u64,
    /// Windows whose splice was abandoned.
    pub stitch_rejected: u64,
    /// Windows stitched into the result.
    pub improved: u64,
    /// AND nodes saved by stitched windows.
    pub nodes_saved: u64,
    /// Invariant violations caught by checked modes.
    pub check_violations: u64,
}

/// Phase wall-clocks in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseMicros {
    /// Window-extraction phase.
    pub extract: u64,
    /// Parallel optimization phase (wall-clock, not summed busy time).
    pub optimize: u64,
    /// Serial stitching phase.
    pub stitch: u64,
    /// End-to-end run.
    pub total: u64,
}

/// One engine's merged statistics, including its invocation-latency
/// histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Engine name.
    pub name: String,
    /// Windows / partitions processed.
    pub windows: u64,
    /// Candidate moves evaluated.
    pub tried: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// AND-node reduction (positive = smaller network).
    pub gain: i64,
    /// BDD node-limit bailouts.
    pub bailouts: u64,
    /// Busy time summed over workers and windows, in microseconds. This
    /// can exceed the run's wall-clock under `--threads N` — see
    /// [`PhaseMicros`] for true wall-clock.
    pub busy_us: u64,
    /// Per-invocation latency, power-of-two microsecond buckets.
    pub latency_us: Histogram,
}

/// Aggregated BDD-manager counters, harvested when managers are recycled
/// (before `reset` zeroes them) and summed across all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddCounters {
    /// Managers returned to a pool (or reset in place) with their
    /// counters harvested.
    pub managers_recycled: u64,
    /// Live nodes summed at each harvest point.
    pub nodes_allocated: u64,
    /// Largest single-manager node count observed at harvest.
    pub peak_nodes: u64,
    /// Unique-table hits.
    pub unique_hits: u64,
    /// Computed-table (ITE cache) hits.
    pub cache_hits: u64,
    /// ITE calls.
    pub ite_calls: u64,
}

/// Aggregated SAT-solver counters, recorded per `solve` call and summed
/// across all solvers and workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatCounters {
    /// `solve` calls.
    pub solves: u64,
    /// Calls returning SAT.
    pub sat: u64,
    /// Calls returning UNSAT.
    pub unsat: u64,
    /// Calls giving up on their conflict budget.
    pub unknown: u64,
    /// Calls interrupted by a deadline / cancellation.
    pub interrupted: u64,
    /// Conflicts.
    pub conflicts: u64,
    /// Decisions.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
}

/// Aggregated simulation-filter counters: what the shared signature
/// service screened before exact (BDD/SAT) reasoning ran, and how the
/// counterexample feedback loop refined it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimFilterCounters {
    /// Candidates rejected by a signature comparison (exact reasoning
    /// skipped).
    pub hits: u64,
    /// Candidates that passed the screen and went on to exact reasoning.
    pub misses: u64,
    /// Counterexample witnesses harvested from refuted SAT checks.
    pub cex_recorded: u64,
    /// Counterexample patterns committed into the shared pattern set.
    pub cex_committed: u64,
    /// Networks (re-)simulated against the service's pattern set.
    pub resims: u64,
}

/// Job-server lifecycle counters (all zero for one-shot tool runs).
///
/// `sbm-server` fills these per job: how many execution slices the job
/// consumed, how often it was preempted and parked as a checkpoint, how
/// often it resumed (in-process or after a server restart), and how
/// long it sat in the admission queue. Integers only, like every other
/// block — microseconds, not floating-point seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Execution slices the job ran (1 for a job that never parked).
    pub slices: u64,
    /// Times the job exceeded a slice and was parked as a checkpoint.
    pub parks: u64,
    /// Times the job resumed from its parked checkpoint.
    pub resumes: u64,
    /// Times the job was recovered by a crash-restart scan.
    pub recoveries: u64,
    /// Total time spent waiting in the admission queue, in microseconds.
    pub queue_us: u64,
}

/// One engine's fault counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineFaultCounters {
    /// Engine name (`"pipeline"` for faults outside any engine).
    pub name: String,
    /// Panics caught.
    pub panics: u64,
    /// Deadline / cancellation hits.
    pub deadline_hits: u64,
    /// Genuine BDD node-limit bailouts.
    pub bailouts: u64,
    /// Injected bailouts.
    pub injected_bailouts: u64,
    /// Injected delays.
    pub delays: u64,
    /// Reduced-effort retries.
    pub retries: u64,
    /// Retries whose second attempt completed.
    pub retry_successes: u64,
}

/// Fault-tolerance record of the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Windows degraded to their original sub-network.
    pub degraded_windows: u64,
    /// Faults injected by a configured fault plan.
    pub injected: u64,
    /// Per-engine counters, in first-occurrence order.
    pub per_engine: Vec<EngineFaultCounters>,
}

/// Resume bookkeeping (present only for resumed runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// Valid journal records loaded.
    pub records_replayed: u64,
    /// Torn tail records dropped.
    pub torn_dropped: u64,
    /// Stale records dropped (their windows re-ran).
    pub stale_dropped: u64,
    /// Windows satisfied from the journal.
    pub windows_replayed: u64,
    /// Windows executed fresh.
    pub windows_rerun: u64,
    /// Script steps skipped via state snapshots.
    pub steps_skipped: u64,
}

/// The serializable record of one benchmark-tool run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Producing tool (`"table1"`, `"table2"`, `"table3"`, …).
    pub tool: String,
    /// Benchmark scale the tool ran at (free-form, e.g. `"Reduced"`).
    pub scale: String,
    /// Worker threads of the run.
    pub threads: u64,
    /// Benchmarks / designs processed, in run order.
    pub benchmarks: Vec<String>,
    /// Window-outcome counters.
    pub windows: WindowReport,
    /// Phase wall-clocks.
    pub phases_us: PhaseMicros,
    /// Per-engine statistics, in chain order.
    pub engines: Vec<EngineReport>,
    /// Aggregated BDD counters.
    pub bdd: BddCounters,
    /// Aggregated SAT counters.
    pub sat: SatCounters,
    /// Aggregated simulation-filter counters.
    pub sim_filter: SimFilterCounters,
    /// Job-server lifecycle counters (zero outside `sbm-server`).
    pub server: ServerCounters,
    /// Fault-tolerance record.
    pub faults: FaultReport,
    /// Resume bookkeeping, for resumed runs.
    pub resume: Option<ResumeReport>,
    /// First checkpoint I/O failure, if any.
    pub checkpoint_error: Option<String>,
    /// Tool-specific extra counters.
    pub extra: CounterSet,
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport {
            schema_version: SCHEMA_VERSION,
            tool: String::new(),
            scale: String::new(),
            threads: 1,
            benchmarks: Vec::new(),
            windows: WindowReport::default(),
            phases_us: PhaseMicros::default(),
            engines: Vec::new(),
            bdd: BddCounters::default(),
            sat: SatCounters::default(),
            sim_filter: SimFilterCounters::default(),
            server: ServerCounters::default(),
            faults: FaultReport::default(),
            resume: None,
            checkpoint_error: None,
            extra: CounterSet::default(),
        }
    }
}

/// Why a serialized report could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The document is not well-formed JSON.
    Json(JsonError),
    /// The document's schema version differs from [`SCHEMA_VERSION`].
    SchemaVersion {
        /// The version this build understands.
        expected: u64,
        /// The version found in the document.
        found: u64,
    },
    /// A required field is absent — the schema shrank.
    MissingField {
        /// Object the field was expected in.
        context: &'static str,
        /// The absent field.
        field: &'static str,
    },
    /// An unrecognized field is present — the schema grew without a
    /// version bump.
    UnknownField {
        /// Object the field was found in.
        context: &'static str,
        /// The unrecognized field.
        field: String,
    },
    /// A field holds a value of the wrong JSON type or range.
    WrongType {
        /// Object the field lives in.
        context: &'static str,
        /// The offending field.
        field: String,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::SchemaVersion { expected, found } => write!(
                f,
                "schema version mismatch: this build reads v{expected}, the report is v{found}"
            ),
            ReportError::MissingField { context, field } => {
                write!(f, "missing field '{field}' in {context}")
            }
            ReportError::UnknownField { context, field } => {
                write!(f, "unknown field '{field}' in {context} (schema drift?)")
            }
            ReportError::WrongType { context, field } => {
                write!(f, "field '{field}' in {context} has the wrong type")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

impl RunReport {
    /// Serializes the report as pretty-printed JSON (stable key order,
    /// trailing newline) — the `BENCH_*.json` on-disk form.
    pub fn to_json(&self) -> String {
        write_pretty(&self.to_value())
    }

    /// Accumulates `prior`'s counters into `self`, counter block by
    /// counter block. This is how a preempted job's slices compose into
    /// one honest report: each slice produces a partial report, and the
    /// finishing slice absorbs the parked partials so the final report
    /// covers the whole job, not just its tail. Identity fields
    /// (`tool`, `scale`, `threads`, `benchmarks`) keep `self`'s values;
    /// every numeric counter sums (`peak_nodes` takes the max, being a
    /// high-water mark); engines and fault entries merge by name.
    pub fn absorb(&mut self, prior: &RunReport) {
        let w = &mut self.windows;
        let pw = &prior.windows;
        w.total += pw.total;
        w.skipped += pw.skipped;
        w.unchanged += pw.unchanged;
        w.gate_rejected += pw.gate_rejected;
        w.stitch_rejected += pw.stitch_rejected;
        w.improved += pw.improved;
        w.nodes_saved += pw.nodes_saved;
        w.check_violations += pw.check_violations;

        self.phases_us.extract += prior.phases_us.extract;
        self.phases_us.optimize += prior.phases_us.optimize;
        self.phases_us.stitch += prior.phases_us.stitch;
        self.phases_us.total += prior.phases_us.total;

        for pe in &prior.engines {
            let e = match self.engines.iter_mut().find(|e| e.name == pe.name) {
                Some(e) => e,
                None => {
                    self.engines.push(EngineReport {
                        name: pe.name.clone(),
                        ..EngineReport::default()
                    });
                    // Just pushed, so the vector is non-empty.
                    match self.engines.last_mut() {
                        Some(e) => e,
                        None => return,
                    }
                }
            };
            e.windows += pe.windows;
            e.tried += pe.tried;
            e.accepted += pe.accepted;
            e.gain += pe.gain;
            e.bailouts += pe.bailouts;
            e.busy_us += pe.busy_us;
            e.latency_us.merge(&pe.latency_us);
        }

        self.bdd.managers_recycled += prior.bdd.managers_recycled;
        self.bdd.nodes_allocated += prior.bdd.nodes_allocated;
        self.bdd.peak_nodes = self.bdd.peak_nodes.max(prior.bdd.peak_nodes);
        self.bdd.unique_hits += prior.bdd.unique_hits;
        self.bdd.cache_hits += prior.bdd.cache_hits;
        self.bdd.ite_calls += prior.bdd.ite_calls;

        self.sat.solves += prior.sat.solves;
        self.sat.sat += prior.sat.sat;
        self.sat.unsat += prior.sat.unsat;
        self.sat.unknown += prior.sat.unknown;
        self.sat.interrupted += prior.sat.interrupted;
        self.sat.conflicts += prior.sat.conflicts;
        self.sat.decisions += prior.sat.decisions;
        self.sat.propagations += prior.sat.propagations;

        self.sim_filter.hits += prior.sim_filter.hits;
        self.sim_filter.misses += prior.sim_filter.misses;
        self.sim_filter.cex_recorded += prior.sim_filter.cex_recorded;
        self.sim_filter.cex_committed += prior.sim_filter.cex_committed;
        self.sim_filter.resims += prior.sim_filter.resims;

        self.server.slices += prior.server.slices;
        self.server.parks += prior.server.parks;
        self.server.resumes += prior.server.resumes;
        self.server.recoveries += prior.server.recoveries;
        self.server.queue_us += prior.server.queue_us;

        self.faults.degraded_windows += prior.faults.degraded_windows;
        self.faults.injected += prior.faults.injected;
        for pf in &prior.faults.per_engine {
            let f = match self
                .faults
                .per_engine
                .iter_mut()
                .find(|f| f.name == pf.name)
            {
                Some(f) => f,
                None => {
                    self.faults.per_engine.push(EngineFaultCounters {
                        name: pf.name.clone(),
                        ..EngineFaultCounters::default()
                    });
                    match self.faults.per_engine.last_mut() {
                        Some(f) => f,
                        None => return,
                    }
                }
            };
            f.panics += pf.panics;
            f.deadline_hits += pf.deadline_hits;
            f.bailouts += pf.bailouts;
            f.injected_bailouts += pf.injected_bailouts;
            f.delays += pf.delays;
            f.retries += pf.retries;
            f.retry_successes += pf.retry_successes;
        }

        if let Some(pr) = &prior.resume {
            let r = self.resume.get_or_insert_with(ResumeReport::default);
            r.records_replayed += pr.records_replayed;
            r.torn_dropped += pr.torn_dropped;
            r.stale_dropped += pr.stale_dropped;
            r.windows_replayed += pr.windows_replayed;
            r.windows_rerun += pr.windows_rerun;
            r.steps_skipped += pr.steps_skipped;
        }

        if self.checkpoint_error.is_none() {
            self.checkpoint_error.clone_from(&prior.checkpoint_error);
        }
        self.extra.merge(&prior.extra);
    }

    /// Decodes a report serialized by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`ReportError`] on malformed JSON, a schema-version mismatch, or
    /// any missing / unknown / mistyped field (see the module docs on
    /// strictness).
    pub fn from_json(text: &str) -> Result<RunReport, ReportError> {
        let value = parse(text)?;
        Self::from_value(value)
    }

    fn to_value(&self) -> JsonValue {
        let windows = &self.windows;
        let phases = &self.phases_us;
        let bdd = &self.bdd;
        let sat = &self.sat;
        JsonValue::Obj(vec![
            ("schema_version".into(), uint(self.schema_version)),
            ("tool".into(), JsonValue::Str(self.tool.clone())),
            ("scale".into(), JsonValue::Str(self.scale.clone())),
            ("threads".into(), uint(self.threads)),
            (
                "benchmarks".into(),
                JsonValue::Arr(
                    self.benchmarks
                        .iter()
                        .map(|b| JsonValue::Str(b.clone()))
                        .collect(),
                ),
            ),
            (
                "windows".into(),
                JsonValue::Obj(vec![
                    ("total".into(), uint(windows.total)),
                    ("skipped".into(), uint(windows.skipped)),
                    ("unchanged".into(), uint(windows.unchanged)),
                    ("gate_rejected".into(), uint(windows.gate_rejected)),
                    ("stitch_rejected".into(), uint(windows.stitch_rejected)),
                    ("improved".into(), uint(windows.improved)),
                    ("nodes_saved".into(), uint(windows.nodes_saved)),
                    ("check_violations".into(), uint(windows.check_violations)),
                ]),
            ),
            (
                "phases_us".into(),
                JsonValue::Obj(vec![
                    ("extract".into(), uint(phases.extract)),
                    ("optimize".into(), uint(phases.optimize)),
                    ("stitch".into(), uint(phases.stitch)),
                    ("total".into(), uint(phases.total)),
                ]),
            ),
            (
                "engines".into(),
                JsonValue::Arr(self.engines.iter().map(engine_to_value).collect()),
            ),
            (
                "bdd".into(),
                JsonValue::Obj(vec![
                    ("managers_recycled".into(), uint(bdd.managers_recycled)),
                    ("nodes_allocated".into(), uint(bdd.nodes_allocated)),
                    ("peak_nodes".into(), uint(bdd.peak_nodes)),
                    ("unique_hits".into(), uint(bdd.unique_hits)),
                    ("cache_hits".into(), uint(bdd.cache_hits)),
                    ("ite_calls".into(), uint(bdd.ite_calls)),
                ]),
            ),
            (
                "sat".into(),
                JsonValue::Obj(vec![
                    ("solves".into(), uint(sat.solves)),
                    ("sat".into(), uint(sat.sat)),
                    ("unsat".into(), uint(sat.unsat)),
                    ("unknown".into(), uint(sat.unknown)),
                    ("interrupted".into(), uint(sat.interrupted)),
                    ("conflicts".into(), uint(sat.conflicts)),
                    ("decisions".into(), uint(sat.decisions)),
                    ("propagations".into(), uint(sat.propagations)),
                ]),
            ),
            (
                "sim_filter".into(),
                JsonValue::Obj(vec![
                    ("hits".into(), uint(self.sim_filter.hits)),
                    ("misses".into(), uint(self.sim_filter.misses)),
                    ("cex_recorded".into(), uint(self.sim_filter.cex_recorded)),
                    ("cex_committed".into(), uint(self.sim_filter.cex_committed)),
                    ("resims".into(), uint(self.sim_filter.resims)),
                ]),
            ),
            (
                "server".into(),
                JsonValue::Obj(vec![
                    ("slices".into(), uint(self.server.slices)),
                    ("parks".into(), uint(self.server.parks)),
                    ("resumes".into(), uint(self.server.resumes)),
                    ("recoveries".into(), uint(self.server.recoveries)),
                    ("queue_us".into(), uint(self.server.queue_us)),
                ]),
            ),
            (
                "faults".into(),
                JsonValue::Obj(vec![
                    (
                        "degraded_windows".into(),
                        uint(self.faults.degraded_windows),
                    ),
                    ("injected".into(), uint(self.faults.injected)),
                    (
                        "per_engine".into(),
                        JsonValue::Arr(
                            self.faults
                                .per_engine
                                .iter()
                                .map(fault_counters_to_value)
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "resume".into(),
                match &self.resume {
                    None => JsonValue::Null,
                    Some(r) => JsonValue::Obj(vec![
                        ("records_replayed".into(), uint(r.records_replayed)),
                        ("torn_dropped".into(), uint(r.torn_dropped)),
                        ("stale_dropped".into(), uint(r.stale_dropped)),
                        ("windows_replayed".into(), uint(r.windows_replayed)),
                        ("windows_rerun".into(), uint(r.windows_rerun)),
                        ("steps_skipped".into(), uint(r.steps_skipped)),
                    ]),
                },
            ),
            (
                "checkpoint_error".into(),
                match &self.checkpoint_error {
                    None => JsonValue::Null,
                    Some(e) => JsonValue::Str(e.clone()),
                },
            ),
            (
                "extra".into(),
                JsonValue::Obj(
                    self.extra
                        .iter()
                        .map(|(n, v)| (n.to_string(), uint(v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(value: JsonValue) -> Result<RunReport, ReportError> {
        let mut top = Fields::new(value, "report")?;
        let schema_version = top.u64("schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(ReportError::SchemaVersion {
                expected: SCHEMA_VERSION,
                found: schema_version,
            });
        }
        let tool = top.string("tool")?;
        let scale = top.string("scale")?;
        let threads = top.u64("threads")?;
        let benchmarks = match top.take("benchmarks")? {
            JsonValue::Arr(items) => items
                .into_iter()
                .map(|v| match v {
                    JsonValue::Str(s) => Ok(s),
                    _ => Err(wrong("report", "benchmarks")),
                })
                .collect::<Result<Vec<String>, ReportError>>()?,
            _ => return Err(wrong("report", "benchmarks")),
        };

        let mut w = Fields::new(top.take("windows")?, "windows")?;
        let windows = WindowReport {
            total: w.u64("total")?,
            skipped: w.u64("skipped")?,
            unchanged: w.u64("unchanged")?,
            gate_rejected: w.u64("gate_rejected")?,
            stitch_rejected: w.u64("stitch_rejected")?,
            improved: w.u64("improved")?,
            nodes_saved: w.u64("nodes_saved")?,
            check_violations: w.u64("check_violations")?,
        };
        w.finish()?;

        let mut p = Fields::new(top.take("phases_us")?, "phases_us")?;
        let phases_us = PhaseMicros {
            extract: p.u64("extract")?,
            optimize: p.u64("optimize")?,
            stitch: p.u64("stitch")?,
            total: p.u64("total")?,
        };
        p.finish()?;

        let engines = match top.take("engines")? {
            JsonValue::Arr(items) => items
                .into_iter()
                .map(engine_from_value)
                .collect::<Result<Vec<EngineReport>, ReportError>>()?,
            _ => return Err(wrong("report", "engines")),
        };

        let mut b = Fields::new(top.take("bdd")?, "bdd")?;
        let bdd = BddCounters {
            managers_recycled: b.u64("managers_recycled")?,
            nodes_allocated: b.u64("nodes_allocated")?,
            peak_nodes: b.u64("peak_nodes")?,
            unique_hits: b.u64("unique_hits")?,
            cache_hits: b.u64("cache_hits")?,
            ite_calls: b.u64("ite_calls")?,
        };
        b.finish()?;

        let mut s = Fields::new(top.take("sat")?, "sat")?;
        let sat = SatCounters {
            solves: s.u64("solves")?,
            sat: s.u64("sat")?,
            unsat: s.u64("unsat")?,
            unknown: s.u64("unknown")?,
            interrupted: s.u64("interrupted")?,
            conflicts: s.u64("conflicts")?,
            decisions: s.u64("decisions")?,
            propagations: s.u64("propagations")?,
        };
        s.finish()?;

        let mut sf = Fields::new(top.take("sim_filter")?, "sim_filter")?;
        let sim_filter = SimFilterCounters {
            hits: sf.u64("hits")?,
            misses: sf.u64("misses")?,
            cex_recorded: sf.u64("cex_recorded")?,
            cex_committed: sf.u64("cex_committed")?,
            resims: sf.u64("resims")?,
        };
        sf.finish()?;

        let mut sv = Fields::new(top.take("server")?, "server")?;
        let server = ServerCounters {
            slices: sv.u64("slices")?,
            parks: sv.u64("parks")?,
            resumes: sv.u64("resumes")?,
            recoveries: sv.u64("recoveries")?,
            queue_us: sv.u64("queue_us")?,
        };
        sv.finish()?;

        let mut fa = Fields::new(top.take("faults")?, "faults")?;
        let faults = FaultReport {
            degraded_windows: fa.u64("degraded_windows")?,
            injected: fa.u64("injected")?,
            per_engine: match fa.take("per_engine")? {
                JsonValue::Arr(items) => items
                    .into_iter()
                    .map(fault_counters_from_value)
                    .collect::<Result<Vec<EngineFaultCounters>, ReportError>>()?,
                _ => return Err(wrong("faults", "per_engine")),
            },
        };
        fa.finish()?;

        let resume = match top.take("resume")? {
            JsonValue::Null => None,
            value => {
                let mut r = Fields::new(value, "resume")?;
                let resume = ResumeReport {
                    records_replayed: r.u64("records_replayed")?,
                    torn_dropped: r.u64("torn_dropped")?,
                    stale_dropped: r.u64("stale_dropped")?,
                    windows_replayed: r.u64("windows_replayed")?,
                    windows_rerun: r.u64("windows_rerun")?,
                    steps_skipped: r.u64("steps_skipped")?,
                };
                r.finish()?;
                Some(resume)
            }
        };

        let checkpoint_error = match top.take("checkpoint_error")? {
            JsonValue::Null => None,
            JsonValue::Str(s) => Some(s),
            _ => return Err(wrong("report", "checkpoint_error")),
        };

        let mut extra = CounterSet::new();
        match top.take("extra")? {
            JsonValue::Obj(fields) => {
                for (name, value) in fields {
                    match value.as_u64() {
                        Some(v) => extra.add(&name, v),
                        None => {
                            return Err(ReportError::WrongType {
                                context: "extra",
                                field: name,
                            })
                        }
                    }
                }
            }
            _ => return Err(wrong("report", "extra")),
        }
        top.finish()?;

        Ok(RunReport {
            schema_version,
            tool,
            scale,
            threads,
            benchmarks,
            windows,
            phases_us,
            engines,
            bdd,
            sat,
            sim_filter,
            server,
            faults,
            resume,
            checkpoint_error,
            extra,
        })
    }
}

fn uint(v: u64) -> JsonValue {
    // Counters beyond i64::MAX are unreachable in practice; saturate
    // rather than panic if one ever appears.
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn wrong(context: &'static str, field: &str) -> ReportError {
    ReportError::WrongType {
        context,
        field: field.to_string(),
    }
}

fn engine_to_value(e: &EngineReport) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(e.name.clone())),
        ("windows".into(), uint(e.windows)),
        ("tried".into(), uint(e.tried)),
        ("accepted".into(), uint(e.accepted)),
        ("gain".into(), JsonValue::Int(e.gain)),
        ("bailouts".into(), uint(e.bailouts)),
        ("busy_us".into(), uint(e.busy_us)),
        (
            "latency_us".into(),
            JsonValue::Arr(e.latency_us.counts().iter().map(|&c| uint(c)).collect()),
        ),
    ])
}

fn engine_from_value(value: JsonValue) -> Result<EngineReport, ReportError> {
    let mut f = Fields::new(value, "engine")?;
    let report = EngineReport {
        name: f.string("name")?,
        windows: f.u64("windows")?,
        tried: f.u64("tried")?,
        accepted: f.u64("accepted")?,
        gain: f.i64("gain")?,
        bailouts: f.u64("bailouts")?,
        busy_us: f.u64("busy_us")?,
        latency_us: match f.take("latency_us")? {
            JsonValue::Arr(items) if items.len() == HISTOGRAM_BUCKETS => {
                let mut counts = [0u64; HISTOGRAM_BUCKETS];
                for (slot, item) in counts.iter_mut().zip(items) {
                    *slot = item.as_u64().ok_or_else(|| wrong("engine", "latency_us"))?;
                }
                Histogram::from_counts(counts)
            }
            _ => return Err(wrong("engine", "latency_us")),
        },
    };
    f.finish()?;
    Ok(report)
}

fn fault_counters_to_value(c: &EngineFaultCounters) -> JsonValue {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str(c.name.clone())),
        ("panics".into(), uint(c.panics)),
        ("deadline_hits".into(), uint(c.deadline_hits)),
        ("bailouts".into(), uint(c.bailouts)),
        ("injected_bailouts".into(), uint(c.injected_bailouts)),
        ("delays".into(), uint(c.delays)),
        ("retries".into(), uint(c.retries)),
        ("retry_successes".into(), uint(c.retry_successes)),
    ])
}

fn fault_counters_from_value(value: JsonValue) -> Result<EngineFaultCounters, ReportError> {
    let mut f = Fields::new(value, "fault counters")?;
    let counters = EngineFaultCounters {
        name: f.string("name")?,
        panics: f.u64("panics")?,
        deadline_hits: f.u64("deadline_hits")?,
        bailouts: f.u64("bailouts")?,
        injected_bailouts: f.u64("injected_bailouts")?,
        delays: f.u64("delays")?,
        retries: f.u64("retries")?,
        retry_successes: f.u64("retry_successes")?,
    };
    f.finish()?;
    Ok(counters)
}

/// Strict object reader: every `take` marks a field consumed;
/// [`Fields::finish`] rejects anything left over.
struct Fields {
    context: &'static str,
    fields: Vec<(String, Option<JsonValue>)>,
}

impl Fields {
    fn new(value: JsonValue, context: &'static str) -> Result<Self, ReportError> {
        match value {
            JsonValue::Obj(fields) => Ok(Fields {
                context,
                fields: fields.into_iter().map(|(k, v)| (k, Some(v))).collect(),
            }),
            _ => Err(ReportError::WrongType {
                context,
                field: "<self>".to_string(),
            }),
        }
    }

    fn take(&mut self, name: &'static str) -> Result<JsonValue, ReportError> {
        for (key, slot) in &mut self.fields {
            if key == name {
                return slot.take().ok_or(ReportError::MissingField {
                    context: self.context,
                    field: name,
                });
            }
        }
        Err(ReportError::MissingField {
            context: self.context,
            field: name,
        })
    }

    fn u64(&mut self, name: &'static str) -> Result<u64, ReportError> {
        self.take(name)?.as_u64().ok_or(ReportError::WrongType {
            context: self.context,
            field: name.to_string(),
        })
    }

    fn i64(&mut self, name: &'static str) -> Result<i64, ReportError> {
        self.take(name)?.as_i64().ok_or(ReportError::WrongType {
            context: self.context,
            field: name.to_string(),
        })
    }

    fn string(&mut self, name: &'static str) -> Result<String, ReportError> {
        match self.take(name)? {
            JsonValue::Str(s) => Ok(s),
            _ => Err(ReportError::WrongType {
                context: self.context,
                field: name.to_string(),
            }),
        }
    }

    fn finish(self) -> Result<(), ReportError> {
        for (key, slot) in self.fields {
            if slot.is_some() {
                return Err(ReportError::UnknownField {
                    context: self.context,
                    field: key,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut latency = Histogram::new();
        latency.record_micros(3);
        latency.record_micros(900);
        let mut extra = CounterSet::new();
        extra.add("script_us", 123_456);
        RunReport {
            schema_version: SCHEMA_VERSION,
            tool: "table1".to_string(),
            scale: "Reduced".to_string(),
            threads: 4,
            benchmarks: vec!["i2c".to_string(), "priority".to_string()],
            windows: WindowReport {
                total: 40,
                skipped: 5,
                unchanged: 10,
                gate_rejected: 1,
                stitch_rejected: 2,
                improved: 22,
                nodes_saved: 317,
                check_violations: 0,
            },
            phases_us: PhaseMicros {
                extract: 1_200,
                optimize: 480_000,
                stitch: 9_000,
                total: 495_000,
            },
            engines: vec![
                EngineReport {
                    name: "mspf".to_string(),
                    windows: 35,
                    tried: 900,
                    accepted: 120,
                    gain: 260,
                    bailouts: 3,
                    busy_us: 1_700_000,
                    latency_us: latency.clone(),
                },
                EngineReport {
                    name: "bdiff".to_string(),
                    gain: -1,
                    ..EngineReport::default()
                },
            ],
            bdd: BddCounters {
                managers_recycled: 70,
                nodes_allocated: 48_000,
                peak_nodes: 4_096,
                unique_hits: 90_000,
                cache_hits: 55_000,
                ite_calls: 130_000,
            },
            sat: SatCounters {
                solves: 40,
                sat: 2,
                unsat: 37,
                unknown: 1,
                interrupted: 0,
                conflicts: 5_000,
                decisions: 21_000,
                propagations: 410_000,
            },
            sim_filter: SimFilterCounters {
                hits: 640,
                misses: 260,
                cex_recorded: 3,
                cex_committed: 2,
                resims: 44,
            },
            server: ServerCounters {
                slices: 3,
                parks: 2,
                resumes: 2,
                recoveries: 1,
                queue_us: 15_000,
            },
            faults: FaultReport {
                degraded_windows: 1,
                injected: 2,
                per_engine: vec![EngineFaultCounters {
                    name: "mspf".to_string(),
                    panics: 1,
                    retries: 1,
                    retry_successes: 1,
                    ..EngineFaultCounters::default()
                }],
            },
            resume: Some(ResumeReport {
                records_replayed: 12,
                windows_replayed: 12,
                windows_rerun: 3,
                ..ResumeReport::default()
            }),
            checkpoint_error: Some("disk full".to_string()),
            extra,
        }
    }

    #[test]
    fn absorb_sums_counters_and_merges_by_name() {
        let prior = sample_report();
        let mut cur = RunReport {
            tool: "sbm-server".to_string(),
            benchmarks: vec!["job-1".to_string()],
            ..RunReport::default()
        };
        cur.sim_filter.hits = 10;
        cur.server.slices = 1;
        cur.engines.push(EngineReport {
            name: "mspf".to_string(),
            tried: 100,
            ..EngineReport::default()
        });
        cur.absorb(&prior);

        // Identity fields keep the absorbing report's values.
        assert_eq!(cur.tool, "sbm-server");
        assert_eq!(cur.benchmarks, vec!["job-1".to_string()]);
        // Counters sum; high-water marks take the max.
        assert_eq!(cur.sim_filter.hits, 650);
        assert_eq!(cur.server.slices, 4);
        assert_eq!(cur.server.recoveries, 1);
        assert_eq!(cur.bdd.peak_nodes, 4_096);
        assert_eq!(cur.windows.total, 40);
        // Engines merge by name: mspf sums, bdiff arrives fresh.
        let mspf = cur.engines.iter().find(|e| e.name == "mspf").expect("mspf");
        assert_eq!(mspf.tried, 1_000);
        assert_eq!(mspf.latency_us.count(), 2);
        assert!(cur.engines.iter().any(|e| e.name == "bdiff"));
        // Fault entries merge by name; resume blocks sum.
        assert_eq!(cur.faults.per_engine.len(), 1);
        assert_eq!(cur.resume.expect("resume").records_replayed, 12);
        assert_eq!(cur.checkpoint_error.as_deref(), Some("disk full"));
        assert_eq!(cur.extra.get("script_us"), 123_456);

        // Absorbing twice doubles the summed counters (no hidden state).
        cur.absorb(&prior);
        assert_eq!(cur.server.slices, 7);
        assert_eq!(cur.sim_filter.hits, 1_290);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json();
        let back = RunReport::from_json(&text).expect("decode");
        assert_eq!(back, report);
        // A second round trip is byte-identical (stable output).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn default_report_round_trips() {
        let report = RunReport::default();
        let back = RunReport::from_json(&report.to_json()).expect("decode");
        assert_eq!(back, report);
        assert_eq!(back.resume, None);
        assert_eq!(back.checkpoint_error, None);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut report = sample_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let err = RunReport::from_json(&report.to_json()).expect_err("must reject");
        assert_eq!(
            err,
            ReportError::SchemaVersion {
                expected: SCHEMA_VERSION,
                found: SCHEMA_VERSION + 1,
            }
        );
    }

    #[test]
    fn missing_field_is_rejected() {
        let text = sample_report().to_json();
        // Drop the "sat" block wholesale: a shrunken schema must not
        // decode quietly.
        let without = text.replace("\"sat\"", "\"sat_renamed\"");
        let err = RunReport::from_json(&without).expect_err("must reject");
        assert!(
            matches!(
                err,
                ReportError::MissingField { field: "sat", .. }
                    | ReportError::UnknownField { .. }
                    | ReportError::WrongType { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn unknown_field_is_rejected() {
        let text =
            sample_report()
                .to_json()
                .replacen("\"tool\"", "\"new_field\": 1,\n  \"tool\"", 1);
        let err = RunReport::from_json(&text).expect_err("must reject");
        assert!(
            matches!(err, ReportError::UnknownField { ref field, .. } if field == "new_field"),
            "{err:?}"
        );
    }

    #[test]
    fn negative_counter_is_rejected() {
        let text = sample_report().to_json();
        let bad = text.replacen("\"threads\": 4", "\"threads\": -4", 1);
        let err = RunReport::from_json(&bad).expect_err("must reject");
        assert!(matches!(err, ReportError::WrongType { .. }), "{err:?}");
    }

    #[test]
    fn truncated_histogram_is_rejected() {
        let report = sample_report();
        let text = report.to_json();
        // Chop one bucket out of the first latency array.
        let start = text.find("\"latency_us\": [").expect("latency field");
        let bad = text.replacen("0, 0, 0]", "0, 0]", 1);
        assert!(bad.len() < text.len(), "replacement must apply");
        let err = RunReport::from_json(&bad).expect_err("must reject");
        assert!(
            matches!(err, ReportError::WrongType { .. }),
            "{err:?} {start}"
        );
    }
}
