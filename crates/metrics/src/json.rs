//! A minimal, dependency-free JSON tree, writer and parser.
//!
//! The workspace has no registry access, so run reports are serialized
//! by hand. The dialect is deliberately small but standard: objects,
//! arrays, strings (with `\uXXXX` escapes), `i64`-range integers,
//! booleans and `null` — everything [`crate::RunReport`] needs, nothing
//! more. Numbers are kept as integers end to end (`i64`), so counter
//! round-trips are exact; floating-point values have no place in a
//! report schema built on monotonic counters and microsecond durations.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the schema uses no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The unsigned integer behind this value, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The signed integer behind this value, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serializes `value` as pretty-printed JSON (2-space indentation, keys
/// in insertion order) — the stable, diffable form `BENCH_*.json` files
/// are stored in.
pub fn write_pretty(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &JsonValue, indent: usize) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&itoa(*i)),
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Arrays of scalars stay on one line (histogram buckets would
            // otherwise dominate the file); arrays of composites nest.
            let scalar = items
                .iter()
                .all(|v| !matches!(v, JsonValue::Arr(_) | JsonValue::Obj(_)));
            if scalar {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, indent);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_value(out, item, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
        }
        JsonValue::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn itoa(i: i64) -> String {
    // `i64` formatting never fails; routed through `fmt::Write` to stay
    // allocation-light without unwrap.
    let mut s = String::new();
    let _ = fmt::Write::write_fmt(&mut s, format_args!("{i}"));
    s
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. The whole input must be one value (plus
/// whitespace); trailing garbage is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected '{}'", want as char)))
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't' | b'f') => self.parse_bool(),
            Some(b'n') => self.parse_null(),
            Some(b'-' | b'0'..=b'9') => self.parse_int(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs are not produced by our writer;
                        // reject them rather than decode them wrongly.
                        match char::from_u32(code) {
                            Some(c) => s.push(c),
                            None => return Err(self.error("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; re-decode it from the source.
                    let rest = &self.bytes[start..];
                    let Some(c) = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                    else {
                        return Err(self.error("invalid UTF-8 in string"));
                    };
                    s.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected 4 hex digits after \\u")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_bool(&mut self) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(JsonValue::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(JsonValue::Bool(false))
        } else {
            Err(self.error("expected 'true' or 'false'"))
        }
    }

    fn parse_null(&mut self) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(JsonValue::Null)
        } else {
            Err(self.error("expected 'null'"))
        }
    }

    fn parse_int(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("floating-point numbers are not part of the report schema"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| self.error("integer out of i64 range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Int(0),
            JsonValue::Int(-42),
            JsonValue::Int(i64::MAX),
            JsonValue::Str("hello \"world\"\n\t\\ π".to_string()),
        ] {
            let text = write_pretty(&v);
            assert_eq!(parse(&text).expect("parse"), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = JsonValue::Obj(vec![
            ("name".to_string(), JsonValue::Str("i2c".to_string())),
            (
                "counts".to_string(),
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty_arr".to_string(), JsonValue::Arr(Vec::new())),
            ("empty_obj".to_string(), JsonValue::Obj(Vec::new())),
            (
                "nested".to_string(),
                JsonValue::Arr(vec![JsonValue::Obj(vec![(
                    "k".to_string(),
                    JsonValue::Null,
                )])]),
            ),
        ]);
        let text = write_pretty(&v);
        assert_eq!(parse(&text).expect("parse"), v, "{text}");
    }

    #[test]
    fn control_characters_escape_and_return() {
        let v = JsonValue::Str("\u{0001}\u{0008}".to_string());
        let text = write_pretty(&v);
        assert_eq!(parse(&text).expect("parse"), v);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "\"unterminated",
            "12.5",
            "1e9",
            "truth",
            "{} extra",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = parse(" {\n\t\"a\" :\r [ 1 , 2 ] , \"b\" : null } ").expect("parse");
        assert_eq!(
            v,
            JsonValue::Obj(vec![
                (
                    "a".to_string(),
                    JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)])
                ),
                ("b".to_string(), JsonValue::Null),
            ])
        );
    }
}
