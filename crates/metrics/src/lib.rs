//! Lightweight observability primitives for the SBM framework.
//!
//! The paper's evaluation (Section V, Tables I–III) is entirely
//! empirical; this crate is the measurement layer behind it. It is a
//! *leaf* crate — `std` only, no other dependencies — so every layer of
//! the workspace (BDD package, SAT solver, pipeline, bench binaries) can
//! use it without dependency cycles:
//!
//! * [`Timer`] — a started wall-clock span; replaces ad-hoc
//!   `Instant::now()` / `elapsed()` pairs so a started timer is a value
//!   that must be consumed, not a local that can be shadowed or dropped;
//! * [`Histogram`] — fixed power-of-two latency buckets over
//!   microseconds. Recording is two integer ops; merging is elementwise
//!   addition, so per-worker histograms combine deterministically;
//! * [`CounterSet`] — named monotonic counters with order-preserving
//!   merge, for tool-specific extras that don't warrant a schema field;
//! * [`RunReport`] — the serializable run-level schema
//!   (see [`report`]) with a hand-rolled, dependency-free JSON
//!   round-trip: [`RunReport::to_json`] / [`RunReport::from_json`].

pub mod json;
pub mod report;

pub use report::{
    BddCounters, EngineFaultCounters, EngineReport, FaultReport, PhaseMicros, ReportError,
    ResumeReport, RunReport, SatCounters, ServerCounters, SimFilterCounters, WindowReport,
    SCHEMA_VERSION,
};

/// The workspace-wide process exit-code convention, shared by every
/// binary (`table1/2/3`, `fig1`, `report_check`, `sbm_lint`,
/// `sbm-server`, `loadgen`).
///
/// Scripts and CI distinguish *what kind* of failure occurred from the
/// code alone: `2` means the invocation was wrong (fix the command
/// line), `1` means the tool ran and found the input wanting (fix the
/// data), `3` means the environment failed underneath it (I/O error,
/// crashed child, lost connection — retry or investigate the host).
pub mod exit {
    /// Success.
    pub const OK: i32 = 0;
    /// The tool ran to completion and its validation failed: a
    /// `report_check` rejection, lint findings, a mismatched result.
    pub const VALIDATION: i32 = 1;
    /// The command line could not be understood (unknown flag, missing
    /// or malformed argument).
    pub const USAGE: i32 = 2;
    /// A runtime failure outside the tool's control: I/O errors,
    /// unreadable roots, broken sockets, dead child processes.
    pub const RUNTIME: i32 = 3;
}

use std::time::{Duration, Instant};

/// A started wall-clock span.
///
/// Unlike a bare [`Instant`], a `Timer` makes the begin/end pairing
/// explicit: construction starts the span, [`Timer::stop`] consumes the
/// value and returns its duration — a timer that is started but never
/// reported shows up as an unused-value warning instead of silently
/// vanishing. [`Timer::elapsed`] reads the running span without stopping
/// it (for multi-phase totals).
#[derive(Debug, Clone, Copy)]
#[must_use = "a started timer should be stopped and its duration reported"]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts a new span now.
    pub fn start() -> Self {
        Timer {
            started: Instant::now(),
        }
    }

    /// Time elapsed since the span started, without consuming the timer.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the span and returns its duration.
    pub fn stop(self) -> Duration {
        self.started.elapsed()
    }
}

/// Number of buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size latency histogram with power-of-two bucket boundaries
/// over microseconds.
///
/// Bucket `0` covers `[0, 2)` µs; bucket `i` (for `1 ≤ i < 31`) covers
/// `[2^i, 2^(i+1))` µs; the last bucket (`31`) is unbounded above
/// (`2^31` µs ≈ 36 min — far beyond any single engine invocation).
/// The fixed layout keeps the type `Copy`-free but allocation-free, and
/// makes merged histograms independent of recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a duration of `micros` microseconds falls into.
    pub fn bucket_index(micros: u64) -> usize {
        if micros < 2 {
            0
        } else {
            let log2 = 63 - micros.leading_zeros() as usize;
            log2.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The `[lower, upper)` microsecond range of bucket `i`; the last
    /// bucket has no upper bound (`None`).
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        let lower = if i == 0 { 0 } else { 1u64 << i };
        let upper = if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            Some(1u64 << (i + 1))
        };
        (lower, upper)
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one sample of `micros` microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.counts[Self::bucket_index(micros)] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The raw per-bucket counts.
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Reconstructs a histogram from raw bucket counts (the JSON reader).
    pub fn from_counts(counts: [u64; HISTOGRAM_BUCKETS]) -> Self {
        Histogram { counts }
    }

    /// Adds `other`'s buckets into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Named monotonic counters, preserved in first-insertion order so
/// serialized output is stable and diffable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    entries: Vec<(String, u64)>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `value` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, value: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.entries.push((name.to_string(), value)),
        }
    }

    /// The current value of `name` (zero when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no counter exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Accumulates `other` into `self`, counter by counter.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_a_nonnegative_span() {
        let t = Timer::start();
        assert!(t.elapsed() <= t.elapsed() + Duration::from_nanos(1));
        let d = t.stop();
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is [0, 2): both 0 µs and 1 µs land there.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        // Every boundary value 2^i starts bucket i; 2^i − 1 is still in
        // bucket i−1 (for i ≥ 2).
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lower = 1u64 << i;
            assert_eq!(Histogram::bucket_index(lower), i, "lower bound of {i}");
            assert_eq!(
                Histogram::bucket_index(lower * 2 - 1),
                i,
                "upper bound of {i}"
            );
        }
        // The last bucket absorbs everything above its lower bound.
        assert_eq!(
            Histogram::bucket_index(1u64 << (HISTOGRAM_BUCKETS - 1)),
            HISTOGRAM_BUCKETS - 1
        );
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_bounds_match_bucket_index() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lower, upper) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lower), i);
            if let Some(upper) = upper {
                assert_eq!(Histogram::bucket_index(upper - 1), i);
                assert_eq!(Histogram::bucket_index(upper), i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(3));
        a.record(Duration::from_micros(1500));
        a.record_micros(0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts()[0], 1);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[10], 1);

        let mut b = Histogram::new();
        b.record_micros(2);
        b.merge(&a);
        assert_eq!(b.count(), 4);
        assert_eq!(b.counts()[1], 2);
        assert!(!b.is_empty());
        assert!(Histogram::new().is_empty());
    }

    #[test]
    fn counter_set_accumulates_in_order() {
        let mut c = CounterSet::new();
        c.add("solves", 2);
        c.add("conflicts", 10);
        c.add("solves", 3);
        assert_eq!(c.get("solves"), 5);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.len(), 2);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["solves", "conflicts"]);

        let mut d = CounterSet::new();
        d.add("conflicts", 1);
        d.merge(&c);
        assert_eq!(d.get("conflicts"), 11);
        assert_eq!(d.get("solves"), 5);
    }
}
