//! Arithmetic benchmark generators.
//!
//! Bit-true implementations of the EPFL arithmetic circuits, except
//! `log2` and `sin`, which are synthetic substitutes of the same I/O
//! signature and circuit class (normalization + polynomial/CORDIC-style
//! datapaths) — the published suite does not specify their exact RTL.

use sbm_aig::{Aig, Lit};

use crate::words::{
    add, const_word, input_word, less_than, multiply, mux_word, shift_left, sub, zero_extend,
};
use crate::Scale;

fn width(scale: Scale, full: usize, reduced: usize) -> usize {
    match scale {
        Scale::Full => full,
        Scale::Reduced => reduced,
    }
}

/// `adder`: ripple-carry addition of two n-bit words (EPFL: 256/129).
pub fn adder(scale: Scale) -> Aig {
    let n = width(scale, 128, 16);
    let mut aig = Aig::new();
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let (sum, carry) = add(&mut aig, &a, &b, Lit::FALSE);
    for s in sum {
        aig.add_output(s);
    }
    aig.add_output(carry);
    aig
}

/// `bar`: barrel shifter, n-bit data with log2(n)-bit shift amount
/// (EPFL: 135/128).
pub fn barrel_shifter(scale: Scale) -> Aig {
    let n = width(scale, 128, 16);
    let stages = n.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let data = input_word(&mut aig, n);
    let shift = input_word(&mut aig, stages);
    let out = shift_left(&mut aig, &data, &shift);
    for o in out {
        aig.add_output(o);
    }
    aig
}

/// `div`: restoring divider; n-bit dividend and divisor, n-bit quotient
/// and remainder (EPFL: 128/128).
pub fn divider(scale: Scale) -> Aig {
    let n = width(scale, 64, 8);
    let mut aig = Aig::new();
    let dividend = input_word(&mut aig, n);
    let divisor = input_word(&mut aig, n);
    let (quotient, remainder) = divide(&mut aig, &dividend, &divisor);
    for q in quotient {
        aig.add_output(q);
    }
    for r in remainder.into_iter().take(n) {
        aig.add_output(r);
    }
    aig
}

/// Restoring division returning (quotient, remainder); remainder has
/// `n + 1` bits internally, of which the low `n` are significant.
pub(crate) fn divide(aig: &mut Aig, dividend: &[Lit], divisor: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
    let n = dividend.len();
    let w = n + 1;
    let divisor_ext = zero_extend(divisor, w);
    let mut rem = const_word(0, w);
    let mut quotient = vec![Lit::FALSE; n];
    for i in (0..n).rev() {
        // rem = (rem << 1) | dividend[i]
        let mut shifted = vec![dividend[i]];
        shifted.extend_from_slice(&rem[..w - 1]);
        let (diff, no_borrow) = sub(aig, &shifted, &divisor_ext);
        quotient[i] = no_borrow;
        rem = mux_word(aig, no_borrow, &diff, &shifted);
    }
    (quotient, rem)
}

/// `sqrt`: restoring square root; 2n-bit radicand, n-bit root
/// (EPFL: 128/64).
pub fn sqrt(scale: Scale) -> Aig {
    let n2 = width(scale, 128, 16);
    let mut aig = Aig::new();
    let value = input_word(&mut aig, n2);
    let root = isqrt(&mut aig, &value);
    for r in root {
        aig.add_output(r);
    }
    aig
}

/// Digit-recurrence integer square root of a 2n-bit word → n-bit root.
pub(crate) fn isqrt(aig: &mut Aig, value: &[Lit]) -> Vec<Lit> {
    let n = value.len() / 2;
    let w = 2 * n + 2;
    let mut rem = const_word(0, w);
    let mut root = const_word(0, w);
    for i in (0..n).rev() {
        // rem = rem << 2 | value[2i+1..=2i]
        let mut shifted = vec![value[2 * i], value[2 * i + 1]];
        shifted.extend_from_slice(&rem[..w - 2]);
        // trial = (root << 2) | 1
        let mut trial = vec![Lit::TRUE, Lit::FALSE];
        trial.extend_from_slice(&root[..w - 2]);
        let (diff, no_borrow) = sub(aig, &shifted, &trial);
        rem = mux_word(aig, no_borrow, &diff, &shifted);
        // root = root << 1 | q
        let mut new_root = vec![no_borrow];
        new_root.extend_from_slice(&root[..w - 1]);
        root = new_root;
    }
    root.truncate(n);
    root
}

/// `hyp`: hypotenuse `⌊√(a² + b²)⌋` of two n-bit words, n-bit result
/// (EPFL: 256/128).
pub fn hypotenuse(scale: Scale) -> Aig {
    let n = width(scale, 128, 8);
    let mut aig = Aig::new();
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let aa = multiply(&mut aig, &a, &a);
    let bb = multiply(&mut aig, &b, &b);
    let (sum, carry) = add(&mut aig, &aa, &bb, Lit::FALSE);
    let mut padded = sum;
    padded.push(carry);
    padded.push(Lit::FALSE); // 2n + 2 bits, an even width for isqrt
    let root = isqrt(&mut aig, &padded); // n + 1 bits
    for r in root.into_iter().take(n) {
        aig.add_output(r);
    }
    aig
}

/// `max`: maximum of four n-bit words plus the 2-bit index of the winner
/// (EPFL: 512/130).
pub fn max(scale: Scale) -> Aig {
    let n = width(scale, 128, 8);
    let mut aig = Aig::new();
    let words: Vec<Vec<Lit>> = (0..4).map(|_| input_word(&mut aig, n)).collect();
    // First round.
    let lt01 = less_than(&mut aig, &words[0], &words[1]);
    let m01 = mux_word(&mut aig, lt01, &words[1], &words[0]);
    let lt23 = less_than(&mut aig, &words[2], &words[3]);
    let m23 = mux_word(&mut aig, lt23, &words[3], &words[2]);
    // Final round.
    let lt = less_than(&mut aig, &m01, &m23);
    let result = mux_word(&mut aig, lt, &m23, &m01);
    for r in result {
        aig.add_output(r);
    }
    // Index bits: high bit = final choice, low bit = winner of that pair.
    let low = aig.mux(lt, lt23, lt01);
    aig.add_output(low);
    aig.add_output(lt);
    aig
}

/// `mult`: n×n array multiplier (EPFL: 128/128).
pub fn multiplier(scale: Scale) -> Aig {
    let n = width(scale, 64, 8);
    let mut aig = Aig::new();
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let p = multiply(&mut aig, &a, &b);
    for bit in p {
        aig.add_output(bit);
    }
    aig
}

/// `square`: n-bit squarer (EPFL: 64/128).
pub fn square(scale: Scale) -> Aig {
    let n = width(scale, 64, 8);
    let mut aig = Aig::new();
    let a = input_word(&mut aig, n);
    let p = multiply(&mut aig, &a.clone(), &a);
    for bit in p {
        aig.add_output(bit);
    }
    aig
}

/// `log2` (synthetic substitute): leading-one normalization followed by a
/// polynomial-style datapath over the fraction — the same
/// priority-logic + multiplier mix as a fixed-point log (EPFL: 32/32).
pub fn log2(scale: Scale) -> Aig {
    let n = width(scale, 32, 8);
    let stages = n.trailing_zeros() as usize;
    let mut aig = Aig::new();
    let x = input_word(&mut aig, n);
    // Leading-zero count via a priority chain (MSB first).
    let mut lzc = const_word(0, stages);
    let mut seen = Lit::FALSE;
    for i in (0..n).rev() {
        let is_leader = aig.and(x[i], !seen);
        // When bit i is the leader, lzc = n-1-i.
        let code = (n - 1 - i) as u128;
        for (s, bit) in lzc.iter_mut().enumerate() {
            if (code >> s) & 1 == 1 {
                *bit = aig.or(*bit, is_leader);
            }
        }
        seen = aig.or(seen, x[i]);
    }
    // Normalize and take the fraction.
    let normalized = shift_left(&mut aig, &x, &lzc);
    let half = n / 2;
    let frac = &normalized[half..];
    // One polynomial step: y + y² (truncated), a log-like correction.
    let sq = multiply(&mut aig, frac, frac);
    let (poly, _) = add(&mut aig, &zero_extend(frac, n), &sq[..n], Lit::FALSE);
    // Outputs: integer part (inverted lzc, log-style) then fraction bits.
    for (i, bit) in poly.iter().enumerate().take(n - stages) {
        let _ = i;
        aig.add_output(*bit);
    }
    for bit in lzc {
        aig.add_output(!bit);
    }
    aig
}

/// `sin` (synthetic substitute): a CORDIC-style rotation pipeline — the
/// same shift-and-add reconvergent structure as a fixed-point sine
/// (EPFL: 24/25).
pub fn sin(scale: Scale) -> Aig {
    let n = width(scale, 24, 8);
    let iterations = n.min(12);
    let mut aig = Aig::new();
    let angle = input_word(&mut aig, n);
    // x starts at the CORDIC gain constant, y at 0.
    let mut x = const_word(0x26DD3B6A >> (32 - n.min(30)) as u32, n);
    let mut y = const_word(0, n);
    for i in 0..iterations {
        let dir = angle[i % n];
        // x' = x ∓ (y >> i); y' = y ± (x >> i) — shifts are free rewires.
        let ys: Vec<Lit> = (0..n)
            .map(|k| if k + i < n { y[k + i] } else { Lit::FALSE })
            .collect();
        let xs: Vec<Lit> = (0..n)
            .map(|k| if k + i < n { x[k + i] } else { Lit::FALSE })
            .collect();
        let (x_plus, _) = add(&mut aig, &x, &ys, Lit::FALSE);
        let (x_minus, _) = sub(&mut aig, &x, &ys);
        let (y_plus, _) = add(&mut aig, &y, &xs, Lit::FALSE);
        let (y_minus, _) = sub(&mut aig, &y, &xs);
        x = mux_word(&mut aig, dir, &x_minus, &x_plus);
        y = mux_word(&mut aig, dir, &y_plus, &y_minus);
    }
    for bit in &y {
        aig.add_output(*bit);
    }
    // Sign output (quadrant fold).
    let sign = aig.xor(angle[n - 1], y[n - 1]);
    aig.add_output(sign);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(aig: &Aig, inputs: &[(usize, u64)]) -> Vec<bool> {
        let mut assignment = Vec::new();
        for &(w, v) in inputs {
            for i in 0..w {
                assignment.push((v >> i) & 1 == 1);
            }
        }
        aig.eval(&assignment)
    }

    fn word_value(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_reduced_is_correct() {
        let aig = adder(Scale::Reduced);
        for (a, b) in [(0u64, 0u64), (1000, 24), (65535, 1), (12345, 54321)] {
            let out = eval(&aig, &[(16, a), (16, b)]);
            assert_eq!(word_value(&out), a + b, "{a} + {b}");
        }
    }

    #[test]
    fn divider_reduced_is_correct() {
        let aig = divider(Scale::Reduced);
        for (a, b) in [(200u64, 7u64), (255, 16), (5, 9), (144, 12)] {
            let out = eval(&aig, &[(8, a), (8, b)]);
            let q = word_value(&out[..8]);
            let r = word_value(&out[8..16]);
            assert_eq!(q, a / b, "{a} / {b}");
            assert_eq!(r, a % b, "{a} % {b}");
        }
    }

    #[test]
    fn sqrt_reduced_is_correct() {
        let aig = sqrt(Scale::Reduced);
        for v in [0u64, 1, 15, 16, 255, 65535, 10000] {
            let out = eval(&aig, &[(16, v)]);
            let root = word_value(&out);
            assert_eq!(root, (v as f64).sqrt() as u64, "sqrt({v})");
        }
    }

    #[test]
    fn hypotenuse_reduced_is_correct() {
        let aig = hypotenuse(Scale::Reduced);
        for (a, b) in [(3u64, 4u64), (5, 12), (255, 255), (0, 17)] {
            let out = eval(&aig, &[(8, a), (8, b)]);
            let h = word_value(&out);
            let expected = ((a * a + b * b) as f64).sqrt() as u64;
            assert_eq!(h & 0xFF, expected & 0xFF, "hyp({a},{b})");
        }
    }

    #[test]
    fn max_reduced_is_correct() {
        let aig = max(Scale::Reduced);
        let cases = [
            ([5u64, 9, 3, 7], 9u64, 1usize),
            ([200, 1, 2, 3], 200, 0),
            ([1, 2, 3, 250], 250, 3),
            ([8, 8, 8, 8], 8, 0),
        ];
        for (words, expect_max, expect_idx) in cases {
            let out = eval(
                &aig,
                &[(8, words[0]), (8, words[1]), (8, words[2]), (8, words[3])],
            );
            assert_eq!(word_value(&out[..8]), expect_max, "max of {words:?}");
            let idx = usize::from(out[8]) | usize::from(out[9]) << 1;
            assert_eq!(idx, expect_idx, "index of {words:?}");
        }
    }

    #[test]
    fn multiplier_and_square_reduced_are_correct() {
        let aig = multiplier(Scale::Reduced);
        for (a, b) in [(0u64, 0u64), (255, 255), (13, 17)] {
            let out = eval(&aig, &[(8, a), (8, b)]);
            assert_eq!(word_value(&out), a * b);
        }
        let sq = square(Scale::Reduced);
        for a in [0u64, 255, 100] {
            let out = eval(&sq, &[(8, a)]);
            assert_eq!(word_value(&out), a * a);
        }
    }

    #[test]
    fn barrel_shifter_reduced_is_correct() {
        let aig = barrel_shifter(Scale::Reduced);
        for (v, s) in [(0xABCDu64, 0u64), (0x0001, 15), (0xFFFF, 8)] {
            let out = eval(&aig, &[(16, v), (4, s)]);
            assert_eq!(word_value(&out), (v << s) & 0xFFFF);
        }
    }

    #[test]
    fn synthetic_benchmarks_are_deterministic() {
        let a = log2(Scale::Reduced);
        let b = log2(Scale::Reduced);
        assert_eq!(a.num_ands(), b.num_ands());
        let s1 = sin(Scale::Reduced);
        let s2 = sin(Scale::Reduced);
        assert_eq!(s1.num_ands(), s2.num_ands());
    }
}
