//! Random/control benchmark generators.
//!
//! `arbiter`, `dec`, `priority`, `voter` and `int2float` are bit-true
//! implementations of their published specs. `cavlc`, `ctrl`, `i2c`,
//! `mem_ctrl` and `router` have no published RTL; they are generated as
//! deterministic synthetic control logic (AND/OR-dominated DAGs seasoned
//! with comparators and muxes) with the EPFL I/O signatures.

use sbm_aig::{Aig, Lit};

use crate::words::{equal, input_word, popcount, sub};
use crate::Scale;

/// `arbiter`: combinational round-robin arbiter core. Inputs: n requests
/// plus an n-bit priority-pointer mask; outputs: n one-hot grants plus
/// "any grant" (EPFL: 256/129).
pub fn arbiter(scale: Scale) -> Aig {
    let n = match scale {
        Scale::Full => 128,
        Scale::Reduced => 16,
    };
    let mut aig = Aig::new();
    let req = input_word(&mut aig, n);
    let pointer = input_word(&mut aig, n);
    // Thermometer mask: th[i] = pointer[0] | ... | pointer[i].
    let mut th = Vec::with_capacity(n);
    let mut acc = Lit::FALSE;
    for &p in &pointer {
        acc = aig.or(acc, p);
        th.push(acc);
    }
    // First pass: lowest request at or after the pointer.
    let masked: Vec<Lit> = req.iter().zip(&th).map(|(&r, &t)| aig.and(r, t)).collect();
    let grant1 = priority_chain(&mut aig, &masked);
    let any1 = aig.or_many(&grant1);
    // Second pass (wrap-around): lowest request overall.
    let grant2 = priority_chain(&mut aig, &req);
    let grants: Vec<Lit> = grant1
        .iter()
        .zip(&grant2)
        .map(|(&g1, &g2)| {
            let wrapped = aig.and(!any1, g2);
            aig.or(g1, wrapped)
        })
        .collect();
    let any = aig.or_many(&grants);
    for g in grants {
        aig.add_output(g);
    }
    aig.add_output(any);
    aig
}

/// One-hot grant of the lowest-index set bit.
fn priority_chain(aig: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    let mut seen = Lit::FALSE;
    let mut grants = Vec::with_capacity(bits.len());
    for &b in bits {
        grants.push(aig.and(b, !seen));
        seen = aig.or(seen, b);
    }
    grants
}

/// `priority`: priority encoder — index of the lowest set request bit
/// plus a valid flag (EPFL: 128/8).
pub fn priority(scale: Scale) -> Aig {
    let n: usize = match scale {
        Scale::Full => 128,
        Scale::Reduced => 32,
    };
    let index_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
    let mut aig = Aig::new();
    let req = input_word(&mut aig, n);
    let grants = priority_chain(&mut aig, &req);
    let mut index = vec![Lit::FALSE; index_bits];
    for (i, &g) in grants.iter().enumerate() {
        for (b, slot) in index.iter_mut().enumerate() {
            if (i >> b) & 1 == 1 {
                *slot = aig.or(*slot, g);
            }
        }
    }
    let valid = aig.or_many(&req);
    for bit in index {
        aig.add_output(bit);
    }
    aig.add_output(valid);
    aig
}

/// `dec`: n-to-2^n decoder (EPFL: 8/256).
pub fn decoder(scale: Scale) -> Aig {
    let n = match scale {
        Scale::Full => 8,
        Scale::Reduced => 5,
    };
    let mut aig = Aig::new();
    let sel = input_word(&mut aig, n);
    for code in 0..(1usize << n) {
        let lits: Vec<Lit> = sel
            .iter()
            .enumerate()
            .map(|(i, &s)| s.complement_if((code >> i) & 1 == 0))
            .collect();
        let out = aig.and_many(&lits);
        aig.add_output(out);
    }
    aig
}

/// `voter`: majority of n (odd) inputs via a popcount tree and a
/// threshold comparison (EPFL: 1001/1).
pub fn voter(scale: Scale) -> Aig {
    let n = match scale {
        Scale::Full => 1001,
        Scale::Reduced => 101,
    };
    let mut aig = Aig::new();
    let votes = input_word(&mut aig, n);
    let count = popcount(&mut aig, &votes);
    // majority ⇔ count >= (n+1)/2 ⇔ count - threshold has no borrow.
    let threshold = crate::words::const_word(n.div_ceil(2) as u128, count.len());
    let (_, no_borrow) = sub(&mut aig, &count, &threshold);
    aig.add_output(no_borrow);
    aig
}

/// `int2float`: converts an 11-bit signed integer to a 7-bit minifloat
/// (sign, 4-bit exponent, 2-bit mantissa) — leading-one detection,
/// normalization and rounding-free truncation (EPFL: 11/7).
pub fn int2float() -> Aig {
    let n = 11;
    let mut aig = Aig::new();
    let x = input_word(&mut aig, n);
    let sign = x[n - 1];
    // Absolute value: (x ^ sign) + sign.
    let flipped: Vec<Lit> = x.iter().map(|&b| aig.xor(b, sign)).collect();
    let one = {
        let mut w = vec![sign];
        w.extend(std::iter::repeat_n(Lit::FALSE, n - 1));
        w
    };
    let (magnitude, _) = crate::words::add(&mut aig, &flipped, &one, Lit::FALSE);
    // Leading-one position (= exponent).
    let mut exponent = vec![Lit::FALSE; 4];
    let mut seen = Lit::FALSE;
    let mut mantissa = [Lit::FALSE; 2];
    for i in (0..n).rev() {
        let leader = aig.and(magnitude[i], !seen);
        for (b, slot) in exponent.iter_mut().enumerate() {
            if (i >> b) & 1 == 1 {
                *slot = aig.or(*slot, leader);
            }
        }
        // Mantissa: the two bits below the leading one.
        for (k, slot) in mantissa.iter_mut().enumerate() {
            if i > k {
                let bit = aig.and(leader, magnitude[i - k - 1]);
                *slot = aig.or(*slot, bit);
            }
        }
        seen = aig.or(seen, magnitude[i]);
    }
    aig.add_output(sign);
    for e in exponent {
        aig.add_output(e);
    }
    for m in mantissa {
        aig.add_output(m);
    }
    aig
}

/// Deterministic xorshift64* for the synthetic generators.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F491_4F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds deterministic synthetic control logic: an AND/OR-dominated DAG
/// with embedded comparators and muxes, `num_ops` internal operations and
/// the requested I/O signature.
fn synthetic_control(seed: u64, num_inputs: usize, num_outputs: usize, num_ops: usize) -> Aig {
    let mut rng = Rng(seed | 1);
    let mut aig = Aig::new();
    let inputs = input_word(&mut aig, num_inputs);
    let mut signals: Vec<Lit> = inputs.clone();
    // Seed comparators over input slices: control logic is full of
    // "state == CONST" tests.
    let slice_width = 4.min(num_inputs);
    for _ in 0..(num_inputs / 8).max(1) {
        let start = rng.below(num_inputs.saturating_sub(slice_width) + 1);
        let slice = &inputs[start..start + slice_width];
        let constant: Vec<Lit> = (0..slice_width)
            .map(|_| {
                if rng.next() & 1 == 1 {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        let eq = equal(&mut aig, slice, &constant);
        signals.push(eq);
    }
    // Random recent-biased DAG.
    while signals.len() < inputs.len() + num_ops {
        let pick = |rng: &mut Rng, signals: &[Lit]| -> Lit {
            // Bias toward recent signals for depth (control chains).
            let n = signals.len();
            let idx = if rng.next() & 3 == 0 {
                rng.below(n)
            } else {
                n - 1 - rng.below((n / 4).max(1))
            };
            signals[idx].complement_if(rng.next() & 1 == 1)
        };
        let a = pick(&mut rng, &signals);
        let b = pick(&mut rng, &signals);
        let s = match rng.below(10) {
            0..=3 => aig.and(a, b),
            4..=7 => aig.or(a, b),
            8 => aig.xor(a, b),
            _ => {
                let c = pick(&mut rng, &signals);
                aig.mux(a, b, c)
            }
        };
        signals.push(s);
    }
    // Outputs: drawn from the most recently created signals.
    for k in 0..num_outputs {
        let back = k % (num_ops / 2).max(1);
        let lit = signals[signals.len() - 1 - back];
        aig.add_output(lit.complement_if(k % 3 == 0));
    }
    aig
}

/// `cavlc` (synthetic substitute): coding-table-style random logic
/// (EPFL: 10/11).
pub fn cavlc() -> Aig {
    synthetic_control(0xCA51C, 10, 11, 650)
}

/// `ctrl` (synthetic substitute): a small controller (EPFL: 7/26).
pub fn ctrl() -> Aig {
    synthetic_control(0xC781, 7, 26, 150)
}

/// `i2c` (synthetic substitute): bus-controller-style logic
/// (EPFL: 147/142).
pub fn i2c(scale: Scale) -> Aig {
    match scale {
        Scale::Full => synthetic_control(0x12C0, 147, 142, 1200),
        Scale::Reduced => synthetic_control(0x12C0, 147, 142, 400),
    }
}

/// `mem_ctrl` (synthetic substitute): memory-controller-style logic
/// (EPFL: 1204/1231).
pub fn mem_ctrl(scale: Scale) -> Aig {
    match scale {
        Scale::Full => synthetic_control(0x3E3C, 1204, 1231, 10_000),
        Scale::Reduced => synthetic_control(0x3E3C, 120, 123, 1_000),
    }
}

/// `router` (synthetic substitute): packet-routing control
/// (EPFL: 60/30).
pub fn router(scale: Scale) -> Aig {
    match scale {
        Scale::Full => synthetic_control(0x80073, 60, 30, 250),
        Scale::Reduced => synthetic_control(0x80073, 60, 30, 120),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(aig: &Aig, bits: &[bool]) -> Vec<bool> {
        aig.eval(bits)
    }

    #[test]
    fn arbiter_grants_one_hot() {
        let aig = arbiter(Scale::Reduced);
        // 16 requests + 16-bit pointer.
        let mut inputs = vec![false; 32];
        inputs[3] = true; // req 3
        inputs[10] = true; // req 10
        inputs[16 + 8] = true; // pointer at 8
        let out = eval_bits(&aig, &inputs);
        let grants: Vec<usize> = (0..16).filter(|&i| out[i]).collect();
        assert_eq!(grants, vec![10], "pointer at 8 picks req 10 over req 3");
        assert!(out[16], "any-grant must be set");
        // Wrap-around: pointer beyond all requests grants the lowest.
        let mut inputs = vec![false; 32];
        inputs[3] = true;
        inputs[16 + 12] = true;
        let out = eval_bits(&aig, &inputs);
        let grants: Vec<usize> = (0..16).filter(|&i| out[i]).collect();
        assert_eq!(grants, vec![3]);
    }

    #[test]
    fn arbiter_no_request_no_grant() {
        let aig = arbiter(Scale::Reduced);
        let mut inputs = vec![false; 32];
        inputs[16] = true; // pointer only
        let out = eval_bits(&aig, &inputs);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn priority_encodes_lowest_bit() {
        let aig = priority(Scale::Reduced);
        let mut inputs = vec![false; 32];
        inputs[5] = true;
        inputs[20] = true;
        let out = eval_bits(&aig, &inputs);
        let idx: usize = (0..5).map(|b| usize::from(out[b]) << b).sum();
        assert_eq!(idx, 5);
        assert!(out[5], "valid flag");
        let out = eval_bits(&aig, &[false; 32]);
        assert!(!out[5], "no request → invalid");
    }

    #[test]
    fn decoder_is_one_hot() {
        let aig = decoder(Scale::Reduced);
        for code in [0usize, 7, 31] {
            let inputs: Vec<bool> = (0..5).map(|i| (code >> i) & 1 == 1).collect();
            let out = eval_bits(&aig, &inputs);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, i == code, "code {code} line {i}");
            }
        }
    }

    #[test]
    fn voter_majority() {
        let aig = voter(Scale::Reduced);
        let mut inputs = vec![false; 101];
        for slot in inputs.iter_mut().take(51) {
            *slot = true;
        }
        assert_eq!(eval_bits(&aig, &inputs), vec![true]);
        inputs[0] = false; // 50 votes: no majority
        assert_eq!(eval_bits(&aig, &inputs), vec![false]);
    }

    #[test]
    fn int2float_encodes() {
        let aig = int2float();
        // +36 = 100100b: leading one at bit 5 → exponent 5, mantissa 00.
        let inputs: Vec<bool> = (0..11).map(|i| (36 >> i) & 1 == 1).collect();
        let out = eval_bits(&aig, &inputs);
        assert!(!out[0], "sign positive");
        let exp: usize = (0..4).map(|b| usize::from(out[1 + b]) << b).sum();
        assert_eq!(exp, 5);
        let mant: usize = (0..2).map(|b| usize::from(out[5 + b]) << b).sum();
        assert_eq!(mant, 0b00);
        // -1 → magnitude 1, exponent 0.
        let minus_one: Vec<bool> = (0..11).map(|i| (0x7FFu64 >> i) & 1 == 1).collect();
        let out = eval_bits(&aig, &minus_one);
        assert!(out[0], "sign negative");
        let exp: usize = (0..4).map(|b| usize::from(out[1 + b]) << b).sum();
        assert_eq!(exp, 0);
    }

    #[test]
    fn synthetic_generators_are_deterministic() {
        let a = cavlc();
        let b = cavlc();
        assert_eq!(a.num_ands(), b.num_ands());
        assert!(a.num_ands() >= 300, "cavlc-sized: {}", a.num_ands());
        let r1 = router(Scale::Full);
        let r2 = router(Scale::Full);
        assert_eq!(r1.num_ands(), r2.num_ands());
    }
}
