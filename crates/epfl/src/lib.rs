//! Generators for EPFL-suite-style benchmarks.
//!
//! The paper evaluates SBM on the EPFL combinational benchmark suite \[2\]
//! (10 arithmetic + 10 random/control circuits). The suite's AIGER files
//! are not redistributed here; instead this crate *generates* circuits from
//! their functional specifications with the same I/O signatures and
//! structural classes. Exactly-specified benchmarks (adders, multipliers,
//! dividers, shifters, encoders, voter, …) are bit-true implementations of
//! the published spec; control-dominated blocks whose RTL is not published
//! (`i2c`, `mem_ctrl`, `cavlc`, `router`) and the transcendental datapaths
//! (`log2`, `sin`) are *synthetic substitutes* of the same I/O signature
//! and circuit class — see `DESIGN.md` for the substitution rationale.
//!
//! Every generator accepts a [`Scale`], because the optimization
//! experiments are CPU-heavy: `Scale::Full` reproduces the paper's I/O
//! sizes, while `Scale::Reduced` shrinks word widths (preserving circuit
//! structure) so the full table sweep runs in minutes.
//!
//! # Example
//!
//! ```
//! use sbm_epfl::{generate, Scale};
//!
//! let aig = generate("priority", Scale::Reduced).expect("known benchmark");
//! assert!(aig.num_ands() > 0);
//! ```

pub mod arith;
pub mod control;
pub mod words;

use sbm_aig::Aig;

/// Benchmark class, mirroring the EPFL suite split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Arithmetic circuits (adders, multipliers, dividers, …).
    Arithmetic,
    /// Random/control circuits (arbiters, decoders, controllers, …).
    RandomControl,
}

/// Generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's I/O sizes (e.g. a 64×64 multiplier).
    Full,
    /// Reduced word widths with identical structure, for fast sweeps.
    Reduced,
}

/// A generated benchmark.
#[derive(Debug)]
pub struct Benchmark {
    /// EPFL benchmark name.
    pub name: &'static str,
    /// Arithmetic or random/control.
    pub class: Class,
    /// Whether this generator is a bit-true spec implementation (`true`)
    /// or a documented synthetic substitute (`false`).
    pub exact_spec: bool,
    /// The generated network.
    pub aig: Aig,
}

/// The names of all 20 EPFL benchmarks, suite order.
pub const NAMES: [&str; 20] = [
    // Arithmetic.
    "adder",
    "bar",
    "div",
    "hyp",
    "log2",
    "max",
    "mult",
    "sin",
    "sqrt",
    "square",
    // Random/control.
    "arbiter",
    "cavlc",
    "ctrl",
    "dec",
    "i2c",
    "int2float",
    "mem_ctrl",
    "priority",
    "router",
    "voter",
];

/// Generates one benchmark by name. Returns `None` for unknown names.
pub fn generate(name: &str, scale: Scale) -> Option<Aig> {
    Some(benchmark(name, scale)?.aig)
}

/// Generates one benchmark with its metadata. Returns `None` for unknown
/// names.
pub fn benchmark(name: &str, scale: Scale) -> Option<Benchmark> {
    let (class, exact, aig) = match name {
        "adder" => (Class::Arithmetic, true, arith::adder(scale)),
        "bar" => (Class::Arithmetic, true, arith::barrel_shifter(scale)),
        "div" => (Class::Arithmetic, true, arith::divider(scale)),
        "hyp" => (Class::Arithmetic, true, arith::hypotenuse(scale)),
        "log2" => (Class::Arithmetic, false, arith::log2(scale)),
        "max" => (Class::Arithmetic, true, arith::max(scale)),
        "mult" => (Class::Arithmetic, true, arith::multiplier(scale)),
        "sin" => (Class::Arithmetic, false, arith::sin(scale)),
        "sqrt" => (Class::Arithmetic, true, arith::sqrt(scale)),
        "square" => (Class::Arithmetic, true, arith::square(scale)),
        "arbiter" => (Class::RandomControl, true, control::arbiter(scale)),
        "cavlc" => (Class::RandomControl, false, control::cavlc()),
        "ctrl" => (Class::RandomControl, false, control::ctrl()),
        "dec" => (Class::RandomControl, true, control::decoder(scale)),
        "i2c" => (Class::RandomControl, false, control::i2c(scale)),
        "int2float" => (Class::RandomControl, true, control::int2float()),
        "mem_ctrl" => (Class::RandomControl, false, control::mem_ctrl(scale)),
        "priority" => (Class::RandomControl, true, control::priority(scale)),
        "router" => (Class::RandomControl, false, control::router(scale)),
        "voter" => (Class::RandomControl, true, control::voter(scale)),
        _ => return None,
    };
    // `NAMES` holds the static name; find it so Benchmark can borrow it.
    let name = NAMES.iter().find(|&&n| n == name)?;
    Some(Benchmark {
        name,
        class,
        exact_spec: exact,
        aig,
    })
}

/// Generates the full suite.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    NAMES.iter().filter_map(|&n| benchmark(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate() {
        for name in NAMES {
            let b = benchmark(name, Scale::Reduced)
                .unwrap_or_else(|| panic!("{name} failed to generate"));
            assert!(b.aig.num_ands() > 0, "{name} is empty");
            assert!(b.aig.num_inputs() > 0, "{name} has no inputs");
            assert!(b.aig.num_outputs() > 0, "{name} has no outputs");
        }
    }

    #[test]
    fn unknown_name_rejected() {
        assert!(generate("nonexistent", Scale::Full).is_none());
    }

    #[test]
    fn full_scale_matches_epfl_io_sizes() {
        // Spot-check the paper's Table I/II I/O columns.
        let cases = [
            ("arbiter", 256, 129),
            ("div", 128, 128),
            ("max", 512, 130),
            ("mult", 128, 128),
            ("priority", 128, 8),
            ("square", 64, 128),
            ("sqrt", 128, 64),
            ("voter", 1001, 1),
            ("hyp", 256, 128),
            ("i2c", 147, 142),
            ("cavlc", 10, 11),
            ("router", 60, 30),
            ("mem_ctrl", 1204, 1231),
            ("log2", 32, 32),
            ("sin", 24, 25),
        ];
        for (name, i, o) in cases {
            let aig = generate(name, Scale::Full).unwrap();
            assert_eq!(aig.num_inputs(), i, "{name} inputs");
            assert_eq!(aig.num_outputs(), o, "{name} outputs");
        }
    }
}
