//! Bit-vector gadgets over AIGs: the building blocks of the benchmark
//! generators. Words are little-endian (`word[0]` is the LSB).

use sbm_aig::{Aig, Lit};

/// Adds `n` fresh inputs as a word.
pub fn input_word(aig: &mut Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|_| aig.add_input()).collect()
}

/// A word of constant bits from an integer (truncated to `n` bits).
pub fn const_word(value: u128, n: usize) -> Vec<Lit> {
    (0..n)
        .map(|i| {
            if i < 128 && (value >> i) & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Full adder: returns (sum, carry).
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let ab = aig.xor(a, b);
    let sum = aig.xor(ab, c);
    let carry = aig.maj3(a, b, c);
    (sum, carry)
}

/// Ripple-carry addition; returns (sum word, carry out).
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn add(aig: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len());
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns (difference,
/// no-borrow): the second component is `1` iff `a >= b` (unsigned).
pub fn sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    add(aig, a, &nb, Lit::TRUE)
}

/// Word-wide 2:1 multiplexer: `sel ? t : e`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len());
    t.iter().zip(e).map(|(&x, &y)| aig.mux(sel, x, y)).collect()
}

/// Unsigned comparison `a < b` (single literal).
pub fn less_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, no_borrow) = sub(aig, a, b);
    !no_borrow
}

/// Equality `a == b`.
pub fn equal(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len());
    let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_many(&bits)
}

/// Logical left shift by a variable amount (barrel structure):
/// `shift` is little-endian; stage `i` shifts by `2^i`.
pub fn shift_left(aig: &mut Aig, word: &[Lit], shift: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = word.to_vec();
    for (stage, &s) in shift.iter().enumerate() {
        let amount = 1usize << stage;
        let shifted: Vec<Lit> = (0..cur.len())
            .map(|i| {
                if i >= amount {
                    cur[i - amount]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        cur = mux_word(aig, s, &shifted, &cur);
    }
    cur
}

/// Logical right shift by a variable amount.
pub fn shift_right(aig: &mut Aig, word: &[Lit], shift: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = word.to_vec();
    for (stage, &s) in shift.iter().enumerate() {
        let amount = 1usize << stage;
        let shifted: Vec<Lit> = (0..cur.len())
            .map(|i| {
                if i + amount < cur.len() {
                    cur[i + amount]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        cur = mux_word(aig, s, &shifted, &cur);
    }
    cur
}

/// Array multiplier `a × b` (product has `a.len() + b.len()` bits).
pub fn multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let n = a.len() + b.len();
    let mut acc = const_word(0, n);
    for (i, &bi) in b.iter().enumerate() {
        // Partial product: (a & bi) << i, padded to n bits.
        let mut pp = const_word(0, n);
        for (j, &aj) in a.iter().enumerate() {
            if i + j < n {
                pp[i + j] = aig.and(aj, bi);
            }
        }
        let (s, _) = add(aig, &acc, &pp, Lit::FALSE);
        acc = s;
    }
    acc
}

/// Population count: the number of set bits, as a ⌈log2(n+1)⌉-bit word,
/// built as a balanced adder tree.
pub fn popcount(aig: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    if bits.is_empty() {
        return vec![];
    }
    // Start with 1-bit words and repeatedly add pairs.
    let mut words: Vec<Vec<Lit>> = bits.iter().map(|&b| vec![b]).collect();
    while words.len() > 1 {
        let mut next = Vec::with_capacity(words.len().div_ceil(2));
        let mut iter = words.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let w = a.len().max(b.len());
                    let pa = zero_extend(&a, w);
                    let pb = zero_extend(&b, w);
                    let (mut s, c) = add(aig, &pa, &pb, Lit::FALSE);
                    s.push(c);
                    next.push(s);
                }
                None => next.push(a),
            }
        }
        words = next;
    }
    let Some(result) = words.pop() else {
        unreachable!("the empty-input case returns early above");
    };
    result
}

/// Pads a word with constant zeros up to `n` bits.
pub fn zero_extend(word: &[Lit], n: usize) -> Vec<Lit> {
    let mut out = word.to_vec();
    while out.len() < n {
        out.push(Lit::FALSE);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a word-level circuit on concrete integers.
    fn eval_word(aig: &Aig, inputs: &[(usize, u64)], outputs: &[Lit]) -> u64 {
        // inputs: (width, value) pairs in input order.
        let mut assignment = Vec::new();
        for &(w, v) in inputs {
            for i in 0..w {
                assignment.push((v >> i) & 1 == 1);
            }
        }
        // Evaluate via a throwaway output registration.
        let mut test = aig.clone();
        for &o in outputs {
            test.add_output(o);
        }
        let all = test.eval(&assignment);
        let base = all.len() - outputs.len();
        all[base..]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_is_correct() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 8);
        let b = input_word(&mut aig, 8);
        let (sum, carry) = add(&mut aig, &a, &b, Lit::FALSE);
        let mut outs = sum;
        outs.push(carry);
        for (x, y) in [(0u64, 0u64), (3, 5), (255, 1), (200, 100), (255, 255)] {
            let got = eval_word(&aig, &[(8, x), (8, y)], &outs);
            assert_eq!(got, x + y, "{x} + {y}");
        }
    }

    #[test]
    fn subtract_and_compare() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 8);
        let b = input_word(&mut aig, 8);
        let (diff, no_borrow) = sub(&mut aig, &a, &b);
        let lt = less_than(&mut aig, &a, &b);
        let eq = equal(&mut aig, &a, &b);
        for (x, y) in [(10u64, 3u64), (3, 10), (7, 7), (0, 255)] {
            let d = eval_word(&aig, &[(8, x), (8, y)], &diff);
            assert_eq!(d, x.wrapping_sub(y) & 0xFF, "{x} - {y}");
            let nb = eval_word(&aig, &[(8, x), (8, y)], &[no_borrow]);
            assert_eq!(nb == 1, x >= y);
            let l = eval_word(&aig, &[(8, x), (8, y)], &[lt]);
            assert_eq!(l == 1, x < y);
            let e = eval_word(&aig, &[(8, x), (8, y)], &[eq]);
            assert_eq!(e == 1, x == y);
        }
    }

    #[test]
    fn shifts_are_correct() {
        let mut aig = Aig::new();
        let w = input_word(&mut aig, 8);
        let s = input_word(&mut aig, 3);
        let left = shift_left(&mut aig, &w, &s);
        let right = shift_right(&mut aig, &w, &s);
        for (x, sh) in [(0b1011_0001u64, 0u64), (0b1011_0001, 3), (0xFF, 7)] {
            let l = eval_word(&aig, &[(8, x), (3, sh)], &left);
            assert_eq!(l, (x << sh) & 0xFF);
            let r = eval_word(&aig, &[(8, x), (3, sh)], &right);
            assert_eq!(r, x >> sh);
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 6);
        let b = input_word(&mut aig, 6);
        let p = multiply(&mut aig, &a, &b);
        for (x, y) in [(0u64, 0u64), (7, 9), (63, 63), (21, 2)] {
            let got = eval_word(&aig, &[(6, x), (6, y)], &p);
            assert_eq!(got, x * y, "{x} * {y}");
        }
    }

    #[test]
    fn popcount_is_correct() {
        let mut aig = Aig::new();
        let bits = input_word(&mut aig, 9);
        let count = popcount(&mut aig, &bits);
        for v in [0u64, 1, 0b101010101, 0x1FF, 0b111] {
            let got = eval_word(&aig, &[(9, v)], &count);
            assert_eq!(got, v.count_ones() as u64, "popcount({v:b})");
        }
    }

    #[test]
    fn mux_word_selects() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = input_word(&mut aig, 4);
        let e = input_word(&mut aig, 4);
        let m = mux_word(&mut aig, s, &t, &e);
        assert_eq!(eval_word(&aig, &[(1, 1), (4, 0xA), (4, 0x5)], &m), 0xA);
        assert_eq!(eval_word(&aig, &[(1, 0), (4, 0xA), (4, 0x5)], &m), 0x5);
    }
}
